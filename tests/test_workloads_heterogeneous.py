"""Tests for the heterogeneous-SINR scenario (radio substrate -> DOT)."""

from __future__ import annotations

import pytest

from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import check_constraints
from repro.radio.channel import ChannelModel
from repro.workloads.heterogeneous import HeterogeneousParams, heterogeneous_problem


class TestHeterogeneousProblem:
    def test_per_task_bits_populated(self):
        problem = heterogeneous_problem(seed=0)
        for task in problem.tasks:
            bits = problem.radio.bits_per_rb(task)
            assert bits > 0
            assert bits != 350_000.0 or True  # PHY-derived, may differ

    def test_far_devices_get_less_capacity(self):
        problem = heterogeneous_problem(seed=0)
        # tasks are distance-ordered by construction (id 1 = nearest)
        bits = [problem.radio.bits_per_rb(t) for t in problem.tasks]
        assert bits[0] >= bits[-1]
        assert len(set(bits)) > 1  # genuinely heterogeneous

    def test_sinr_recorded_on_tasks(self):
        problem = heterogeneous_problem(seed=0)
        sinrs = [t.sinr_db for t in problem.tasks]
        assert sinrs == sorted(sinrs, reverse=True)

    def test_solution_feasible_with_per_task_rates(self):
        problem = heterogeneous_problem(seed=0)
        solution = OffloaDNNSolver().solve(problem)
        report = check_constraints(problem, solution)
        assert report.feasible, report.violations

    def test_far_tasks_need_more_rbs(self):
        problem = heterogeneous_problem(seed=0)
        solution = OffloaDNNSolver().solve(problem)
        near = solution.assignment(problem.tasks[0].task_id)
        far = solution.assignment(problem.tasks[-1].task_id)
        if near.admitted and far.admitted:
            assert far.radio_blocks >= near.radio_blocks

    def test_wider_distance_spread_cuts_admission(self):
        compact = heterogeneous_problem(
            HeterogeneousParams(num_tasks=14, max_distance_m=80.0), seed=1
        )
        spread = heterogeneous_problem(
            HeterogeneousParams(num_tasks=14, max_distance_m=900.0), seed=1
        )
        near_solution = OffloaDNNSolver().solve(compact)
        far_solution = OffloaDNNSolver().solve(spread)
        assert (
            far_solution.weighted_admission_ratio
            <= near_solution.weighted_admission_ratio + 1e-9
        )

    def test_out_of_coverage_devices_dropped(self):
        channel = ChannelModel(tx_power_dbm=-30.0)  # hopeless link budget
        with pytest.raises(ValueError, match="out of coverage"):
            heterogeneous_problem(
                HeterogeneousParams(num_tasks=3, min_distance_m=5_000.0,
                                    max_distance_m=9_000.0),
                channel=channel,
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousParams(num_tasks=0)
        with pytest.raises(ValueError):
            HeterogeneousParams(min_distance_m=100.0, max_distance_m=10.0)
