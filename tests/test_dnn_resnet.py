"""Unit tests for the ResNet-18 builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.resnet import BLOCK_NAMES, ResNet18, basic_block, build_resnet18


@pytest.fixture(scope="module")
def small_model() -> ResNet18:
    return build_resnet18(num_classes=10, input_size=16, width=8, seed=0)


class TestBasicBlock:
    def test_identity_variant_has_no_shortcut(self):
        rng = np.random.default_rng(0)
        block = basic_block(8, 8, stride=1, rng=rng)
        assert block.shortcut is None

    def test_downsampling_variant_has_projection(self):
        rng = np.random.default_rng(0)
        block = basic_block(8, 16, stride=2, rng=rng)
        assert block.shortcut is not None

    def test_forward_shapes(self):
        rng = np.random.default_rng(0)
        block = basic_block(8, 16, stride=2, rng=rng)
        out = block(np.zeros((1, 8, 8, 8), dtype=np.float32))
        assert out.shape == (1, 16, 4, 4)


class TestBuildResnet18:
    def test_block_names_complete(self, small_model):
        assert tuple(small_model.blocks) == BLOCK_NAMES

    def test_forward_produces_logits(self, small_model):
        x = np.random.default_rng(1).normal(size=(2, 3, 16, 16)).astype(np.float32)
        logits = small_model(x)
        assert logits.shape == (2, 10)
        assert np.isfinite(logits).all()

    def test_features_shape(self, small_model):
        x = np.zeros((1, 3, 16, 16), dtype=np.float32)
        feats = small_model.features(x)
        assert feats.shape == (1, 8 * 8, 2, 2)  # 8x width at 1/8 resolution

    def test_standard_width_param_count(self):
        """Full-width ResNet-18 has ~11.2M parameters (matching the
        canonical architecture arithmetic)."""
        model = build_resnet18(num_classes=60, input_size=32, width=64)
        assert 11.0e6 < model.param_count() < 11.5e6

    def test_channel_doubling_across_stages(self, small_model):
        shapes = {}
        shape = small_model.input_shape
        for name in BLOCK_NAMES:
            shape = small_model.blocks[name].output_shape(shape)
            shapes[name] = shape
        assert shapes["layer1"][0] * 2 == shapes["layer2"][0]
        assert shapes["layer2"][0] * 2 == shapes["layer3"][0]
        assert shapes["layer3"][0] * 2 == shapes["layer4"][0]

    def test_spatial_halving_across_stages(self, small_model):
        shape = small_model.input_shape
        for name in BLOCK_NAMES[:-1]:
            shape = small_model.blocks[name].output_shape(shape)
        # 16 px input, three stride-2 stages -> 2 px
        assert shape[1:] == (2, 2)

    def test_imagenet_stem_for_large_inputs(self):
        model = build_resnet18(num_classes=10, input_size=64, width=8)
        # 7x7 stride-2 conv + 3x3 stride-2 pool: 64 -> 16
        assert model.blocks["stem"].output_shape((3, 64, 64))[1:] == (16, 16)

    def test_block_input_shape(self, small_model):
        assert small_model.block_input_shape("stem") == (3, 16, 16)
        assert small_model.block_input_shape("layer2") == (8, 16, 16)
        with pytest.raises(KeyError):
            small_model.block_input_shape("nonexistent")

    def test_flops_positive(self, small_model):
        assert small_model.flops() > 0

    def test_invalid_input_size_raises(self):
        with pytest.raises(ValueError):
            build_resnet18(input_size=4)

    def test_missing_block_raises(self, small_model):
        blocks = dict(small_model.blocks)
        del blocks["layer3"]
        with pytest.raises(ValueError, match="missing blocks"):
            ResNet18(blocks=blocks, input_shape=(3, 16, 16), num_classes=10)

    def test_deterministic_given_seed(self):
        a = build_resnet18(num_classes=5, input_size=16, width=8, seed=7)
        b = build_resnet18(num_classes=5, input_size=16, width=8, seed=7)
        x = np.random.default_rng(0).normal(size=(1, 3, 16, 16)).astype(np.float32)
        np.testing.assert_array_equal(a(x), b(x))
