"""Batch executor: window costing, prefix fusion, worker pool, runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.catalog import Block, Path
from repro.core.task import QualityLevel
from repro.dnn.graph import NamedModule
from repro.dnn.layers import Linear, ReLU
from repro.serving.executor import BatchExecutor, BlockwiseRunner, _window_costs
from repro.serving.queueing import ServingRequest

QUALITY = QualityLevel(name="full", bits_per_image=350_000.0)

TRUNK = (
    Block("base:g1", "base", compute_time_s=0.010, memory_gb=0.2),
    Block("base:g2", "base", compute_time_s=0.008, memory_gb=0.2),
)
HEAD_A = Block("a:g3", "a", compute_time_s=0.004, memory_gb=0.1)
HEAD_B = Block("b:g3", "b", compute_time_s=0.006, memory_gb=0.1)
PATH_A = Path("a", "a", 1, TRUNK + (HEAD_A,), accuracy=0.9, quality=QUALITY)
PATH_B = Path("b", "b", 2, TRUNK + (HEAD_B,), accuracy=0.8, quality=QUALITY)
#: same head block cost but no shared trunk (cloned block ids)
PATH_C = Path(
    "c", "c", 3,
    (
        Block("c:g1", "c", compute_time_s=0.010, memory_gb=0.2),
        Block("c:g2", "c", compute_time_s=0.008, memory_gb=0.2),
        Block("c:g3", "c", compute_time_s=0.004, memory_gb=0.1),
    ),
    accuracy=0.9,
    quality=QUALITY,
)


def request(path: Path, request_id: int = 0) -> ServingRequest:
    return ServingRequest(
        task_id=path.task_id,
        request_id=request_id,
        path=path,
        created_at=0.0,
        deadline_at=1.0,
        bits=350_000.0,
    )


class TestWindowCosts:
    def test_single_request_no_discount(self):
        merged, unmerged, merges = _window_costs([request(PATH_A)], 0.5)
        assert merged == pytest.approx(PATH_A.compute_time_s)
        assert unmerged == pytest.approx(PATH_A.compute_time_s)
        assert merges == 0

    def test_same_path_batching_sublinear(self):
        reqs = [request(PATH_A, i) for i in range(3)]
        merged, unmerged, merges = _window_costs(reqs, 0.5)
        # batch of 3 through every block: c · (1 + 2·0.5) = 2c
        assert merged == pytest.approx(2 * PATH_A.compute_time_s)
        assert unmerged == pytest.approx(merged)  # same path: nothing to merge
        assert merges == 0

    def test_shared_prefix_fused_once(self):
        reqs = [request(PATH_A, 0), request(PATH_B, 1)]
        merged, unmerged, merges = _window_costs(reqs, 0.5)
        trunk = sum(b.compute_time_s for b in TRUNK)
        heads = HEAD_A.compute_time_s + HEAD_B.compute_time_s
        # trunk runs once over the union batch of 2, heads separately
        assert merged == pytest.approx(trunk * 1.5 + heads)
        assert unmerged == pytest.approx(2 * trunk + heads)
        assert merged < unmerged
        assert merges == 2  # g1 and g2 nodes each fuse two paths

    def test_disjoint_paths_gain_nothing(self):
        reqs = [request(PATH_A, 0), request(PATH_C, 1)]
        merged, unmerged, merges = _window_costs(reqs, 0.5)
        assert merged == pytest.approx(unmerged)
        assert merges == 0

    def test_efficiency_one_is_serial(self):
        reqs = [request(PATH_A, 0), request(PATH_A, 1), request(PATH_B, 2)]
        _, unmerged, _ = _window_costs(reqs, 1.0)
        assert unmerged == pytest.approx(
            2 * PATH_A.compute_time_s + PATH_B.compute_time_s
        )

    def test_precision_separate_trunks_never_merge(self):
        """int8 catalog variants live in a ``base:int8:`` block namespace,
        so the prefix trie (here and in the cluster hop-0 fusion, which
        reuses ``_window_costs``) can never fuse an fp32 batch with an
        int8 one — the block-id sequences differ from the first hop."""
        trunk_q = (
            Block("base:int8:g1", "base:int8", compute_time_s=0.005, memory_gb=0.05),
            Block("base:int8:g2", "base:int8", compute_time_s=0.004, memory_gb=0.05),
        )
        head_q = Block("a:int8:g3", "a:int8", compute_time_s=0.002, memory_gb=0.02)
        path_q = Path(
            "a-int8", "a:int8", 1, trunk_q + (head_q,),
            accuracy=0.895, quality=QUALITY,
        )
        reqs = [request(PATH_A, 0), request(path_q, 1)]
        merged, unmerged, merges = _window_costs(reqs, 0.5)
        assert merges == 0
        assert merged == pytest.approx(unmerged)
        # sanity: the same shape with a *shared* trunk does merge
        _, _, fp32_merges = _window_costs(
            [request(PATH_A, 0), request(PATH_B, 1)], 0.5
        )
        assert fp32_merges > 0


class TestBatchExecutor:
    def test_dispatch_stamps_requests(self):
        executor = BatchExecutor(batch_efficiency=0.5)
        reqs = [request(PATH_A, 0), request(PATH_B, 1)]
        report = executor.dispatch(reqs, now=1.0)
        assert report.started_at == pytest.approx(1.0)
        assert report.finished_at == pytest.approx(1.0 + report.compute_s)
        for r in reqs:
            assert r.started_at == pytest.approx(1.0)
            assert r.compute_time_s == pytest.approx(report.compute_s / 2)

    def test_cache_disabled_charges_unshared(self):
        reqs = [request(PATH_A, 0), request(PATH_B, 1)]
        on = BatchExecutor(prefix_cache=True).dispatch(list(reqs), 0.0)
        off = BatchExecutor(prefix_cache=False).dispatch(list(reqs), 0.0)
        assert on.compute_s < off.compute_s
        assert off.compute_s == pytest.approx(on.unshared_compute_s)
        assert off.prefix_merges == 0

    def test_single_worker_serializes_windows(self):
        executor = BatchExecutor(num_workers=1)
        first = executor.dispatch([request(PATH_A, 0)], now=0.0)
        second = executor.dispatch([request(PATH_A, 1)], now=0.0)
        assert second.started_at == pytest.approx(first.finished_at)

    def test_worker_pool_overlaps_windows(self):
        executor = BatchExecutor(num_workers=2)
        first = executor.dispatch([request(PATH_A, 0)], now=0.0)
        second = executor.dispatch([request(PATH_A, 1)], now=0.0)
        assert first.started_at == second.started_at == pytest.approx(0.0)
        assert executor.utilization(first.finished_at) == pytest.approx(1.0)

    def test_saved_accounting(self):
        executor = BatchExecutor(prefix_cache=True)
        report = executor.dispatch([request(PATH_A, 0), request(PATH_B, 1)], 0.0)
        assert executor.compute_saved_s == pytest.approx(report.saved_s)
        assert executor.total_compute_s == pytest.approx(report.compute_s)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            BatchExecutor().dispatch([], 0.0)

    @pytest.mark.parametrize(
        "kwargs", [{"num_workers": 0}, {"batch_efficiency": 1.5}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BatchExecutor(**kwargs)


class TestBlockwiseRunner:
    def _runner(self):
        trunk = NamedModule(
            "t", Linear(4, 8, rng=np.random.default_rng(1)), ReLU()
        )
        head_a = NamedModule("a", Linear(8, 3, rng=np.random.default_rng(2)))
        head_b = NamedModule("b", Linear(8, 2, rng=np.random.default_rng(3)))
        modules = {"base:g1": trunk, "a:g3": head_a, "b:g3": head_b}
        trunk_block = Block("base:g1", "base", compute_time_s=0.01, memory_gb=0.1)
        path_a = Path(
            "a", "a", 1,
            (trunk_block, Block("a:g3", "a", compute_time_s=0.002, memory_gb=0.1)),
            accuracy=0.9, quality=QUALITY,
        )
        path_b = Path(
            "b", "b", 2,
            (trunk_block, Block("b:g3", "b", compute_time_s=0.002, memory_gb=0.1)),
            accuracy=0.8, quality=QUALITY,
        )
        runner = BlockwiseRunner(modules=modules, cacheable=frozenset({"base:g1"}))
        return runner, path_a, path_b, modules

    def test_matches_direct_execution(self):
        runner, path_a, _, modules = self._runner()
        x = np.random.default_rng(0).normal(size=(1, 4))
        expected = modules["a:g3"](modules["base:g1"](x))
        np.testing.assert_allclose(runner.run(path_a, x, input_key=1), expected)

    def test_shared_trunk_cached_across_paths(self):
        runner, path_a, path_b, modules = self._runner()
        x = np.random.default_rng(0).normal(size=(1, 4))
        out_a = runner.run(path_a, x, input_key=7)
        out_b = runner.run(path_b, x, input_key=7)
        assert runner.cache_hits == 1 and runner.cache_misses == 1
        np.testing.assert_allclose(out_b, modules["b:g3"](modules["base:g1"](x)))
        assert out_a.shape == (1, 3) and out_b.shape == (1, 2)

    def test_distinct_inputs_do_not_share(self):
        runner, path_a, path_b, _ = self._runner()
        x = np.random.default_rng(0).normal(size=(1, 4))
        runner.run(path_a, x, input_key=1)
        runner.run(path_b, x, input_key=2)
        assert runner.cache_hits == 0 and runner.cache_misses == 2

    def test_clear_resets_cache(self):
        runner, path_a, path_b, _ = self._runner()
        x = np.random.default_rng(0).normal(size=(1, 4))
        runner.run(path_a, x, input_key=1)
        runner.clear()
        runner.run(path_b, x, input_key=1)
        assert runner.cache_hits == 0

    def test_missing_module_raises(self):
        runner, path_a, _, _ = self._runner()
        runner.modules.pop("a:g3")
        with pytest.raises(KeyError):
            runner.run(path_a, np.zeros((1, 4)))

    def test_cache_capacity_evicts_lru(self):
        runner, path_a, _, _ = self._runner()
        runner.cache_capacity = 2
        x = np.random.default_rng(0).normal(size=(1, 4))
        for key in (1, 2, 3):
            runner.run(path_a, x, input_key=key)
        assert runner.cache_evictions == 1
        assert len(runner._cache) == 2
        # key 1 was evicted: running it again misses; 3 still hits
        runner.run(path_a, x, input_key=1)
        assert runner.cache_hits == 0
        runner.run(path_a, x, input_key=3)
        assert runner.cache_hits == 1

    def test_cache_hit_refreshes_recency(self):
        runner, path_a, _, _ = self._runner()
        runner.cache_capacity = 2
        x = np.random.default_rng(0).normal(size=(1, 4))
        runner.run(path_a, x, input_key=1)
        runner.run(path_a, x, input_key=2)
        runner.run(path_a, x, input_key=1)  # hit: 1 becomes most recent
        runner.run(path_a, x, input_key=3)  # evicts 2, not 1
        runner.run(path_a, x, input_key=1)
        assert runner.cache_hits == 2

    def test_unbounded_cache_never_evicts(self):
        runner, path_a, _, _ = self._runner()
        runner.cache_capacity = None
        x = np.random.default_rng(0).normal(size=(1, 4))
        for key in range(400):
            runner.run(path_a, x, input_key=key)
        assert runner.cache_evictions == 0
        assert len(runner._cache) == 400

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            BlockwiseRunner(modules={}, cache_capacity=0)

    def test_compiled_blocks_match_eager(self):
        runner, path_a, path_b, modules = self._runner()
        compiled = BlockwiseRunner(
            modules=modules,
            cacheable=frozenset({"base:g1"}),
            compile_blocks=True,
        )
        x = np.random.default_rng(0).normal(size=(2, 4)).astype(np.float32)
        for path in (path_a, path_b):
            np.testing.assert_allclose(
                compiled.run(path, x, input_key=5),
                runner.run(path, x, input_key=5),
                atol=1e-5,
            )
        # one plan per (block, shape): trunk + both heads
        assert len(compiled._compiled) == 3
        compiled.clear_compiled()
        assert not compiled._compiled

    def test_eviction_order_is_oldest_first(self):
        runner, path_a, _, _ = self._runner()
        runner.cache_capacity = 3
        x = np.random.default_rng(0).normal(size=(1, 4))
        for key in (1, 2, 3, 4, 5):
            runner.run(path_a, x, input_key=key)
        assert runner.cache_evictions == 2
        # 1 and 2 left in insertion order; 3..5 remain resident
        assert [key for key, _precision, _prefix in runner._cache] == [3, 4, 5]

    def test_precision_tagged_cache_never_crosses_formats(self):
        """Regression: fp32 and int8 runs sharing one activation store
        must never serve each other's trunk activations.  The old
        ``(input_key, prefix)`` key (no precision tag) would hit here
        and hand the int8 path an fp32-exact tensor."""
        runner, path_a, _, modules = self._runner()
        x = np.random.default_rng(0).normal(size=(2, 4)).astype(np.float32)
        out_fp32 = runner.run(path_a, x, input_key=9)
        quantized = BlockwiseRunner(
            modules=modules,
            cacheable=frozenset({"base:g1"}),
            quantize="int8",
            _cache=runner._cache,  # one shared activation store
        )
        out_int8 = quantized.run(path_a, x, input_key=9)
        assert quantized.cache_hits == 0 and quantized.cache_misses == 1
        # matches an isolated int8 runner bit for bit (nothing leaked in)
        isolated = BlockwiseRunner(
            modules=modules, cacheable=frozenset({"base:g1"}), quantize="int8"
        )
        np.testing.assert_array_equal(
            out_int8, isolated.run(path_a, x, input_key=9)
        )
        # both precisions resident under distinct keys
        assert {(k, p) for k, p, _prefix in runner._cache} == {
            (9, "fp32"),
            (9, "int8"),
        }
        # and the quantized trunk output genuinely differs from fp32
        assert not np.allclose(out_int8, out_fp32, atol=1e-7)

    def test_quantize_validation(self):
        with pytest.raises(ValueError):
            BlockwiseRunner(modules={}, quantize="int4")
        runner = BlockwiseRunner(modules={}, quantize="int8")
        assert runner.compile_blocks and runner.precision == "int8"

    def test_clear_compiled_keeps_cached_activations(self):
        runner, path_a, _, modules = self._runner()
        compiled = BlockwiseRunner(
            modules=modules,
            cacheable=frozenset({"base:g1"}),
            compile_blocks=True,
        )
        x = np.random.default_rng(0).normal(size=(1, 4)).astype(np.float32)
        compiled.run(path_a, x, input_key=7)
        assert compiled._compiled and compiled._cache
        compiled.clear_compiled()
        assert not compiled._compiled
        # activation cache untouched: the next run still hits the trunk
        compiled.run(path_a, x, input_key=7)
        assert compiled.cache_hits == 1


class TestDataParallelCostModel:
    def test_defaults_change_nothing(self):
        reqs = [request(PATH_A, i) for i in range(8)]
        base = BatchExecutor().dispatch(list(reqs), 0.0)
        explicit = BatchExecutor(num_procs=1).dispatch(list(reqs), 0.0)
        assert explicit.compute_s == pytest.approx(base.compute_s)

    def test_sharding_divides_cost_plus_overhead(self):
        reqs = [request(PATH_A, i) for i in range(8)]
        serial = BatchExecutor().dispatch(list(reqs), 0.0)
        sharded = BatchExecutor(
            num_procs=4, shard_overhead_s=0.001, min_shard=1
        ).dispatch(list(reqs), 0.0)
        assert sharded.compute_s == pytest.approx(serial.compute_s / 4 + 0.001)
        # the unshared counterfactual is scaled the same way
        assert sharded.unshared_compute_s == pytest.approx(
            serial.unshared_compute_s / 4 + 0.001
        )

    def test_small_windows_stay_serial(self):
        reqs = [request(PATH_A, i) for i in range(3)]
        serial = BatchExecutor().dispatch(list(reqs), 0.0)
        sharded = BatchExecutor(
            num_procs=4, shard_overhead_s=0.001, min_shard=2
        ).dispatch(list(reqs), 0.0)  # 3 < 2 * min_shard
        assert sharded.compute_s == pytest.approx(serial.compute_s)

    def test_shards_capped_by_request_count(self):
        reqs = [request(PATH_A, i) for i in range(4)]
        serial = BatchExecutor().dispatch(list(reqs), 0.0)
        sharded = BatchExecutor(num_procs=8, min_shard=1).dispatch(list(reqs), 0.0)
        # 4 requests: at most 4 shards despite 8 processes
        assert sharded.compute_s == pytest.approx(serial.compute_s / 4)

    @pytest.mark.parametrize(
        "kwargs",
        [{"num_procs": 0}, {"shard_overhead_s": -0.1}, {"min_shard": 0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BatchExecutor(**kwargs)
