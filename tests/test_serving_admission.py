"""Token-bucket admission: the served fraction converges to ``z_τ``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.admission import AdmissionGate, TokenBucket


class TestTokenBucket:
    @pytest.mark.parametrize("ratio", [0.1, 0.25, 0.37, 0.5, 0.61, 0.73, 0.9])
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_served_fraction_converges(self, ratio, seed):
        """±2% of z over a stream with randomized burst structure.

        The bucket is clock-free, but interleave allow() calls with
        random-length bursts (from the seed) to mirror how arrival
        processes batch requests in practice.
        """
        rng = np.random.default_rng(seed)
        bucket = TokenBucket(ratio=ratio)
        remaining = 2000
        while remaining > 0:
            burst = min(int(rng.integers(1, 10)), remaining)
            for _ in range(burst):
                bucket.allow()
            remaining -= burst
        assert bucket.offered == 2000
        assert bucket.served_fraction == pytest.approx(ratio, abs=0.02)

    @pytest.mark.parametrize("n", [1, 10, 999])
    def test_zero_ratio_exact(self, n):
        bucket = TokenBucket(ratio=0.0)
        assert not any(bucket.allow() for _ in range(n))
        assert bucket.admitted == 0

    @pytest.mark.parametrize("n", [1, 10, 999])
    def test_full_ratio_exact(self, n):
        bucket = TokenBucket(ratio=1.0)
        assert all(bucket.allow() for _ in range(n))
        assert bucket.admitted == n
        assert bucket.served_fraction == 1.0

    def test_admitted_count_within_one_of_expectation(self):
        """Deterministic streams track ⌊k·z⌋ exactly, not just in the limit."""
        bucket = TokenBucket(ratio=0.3)
        for k in range(1, 200):
            bucket.allow()
            assert abs(bucket.admitted - k * 0.3) <= 1.0

    def test_low_discrepancy_pattern(self):
        bucket = TokenBucket(ratio=0.5)
        decisions = [bucket.allow() for _ in range(6)]
        assert decisions == [False, True, False, True, False, True]

    def test_burst_bounds_credit(self):
        # ratio under 1 can never bank more than `burst` requests
        bucket = TokenBucket(ratio=0.5, burst=2.0)
        for _ in range(100):
            bucket.allow()
        # after a long stream the credit is capped, so a burst of
        # admissions cannot exceed the banked budget
        streak = 0
        for _ in range(10):
            streak = streak + 1 if bucket.allow() else 0
        assert streak <= 2

    def test_served_fraction_nan_before_traffic(self):
        assert np.isnan(TokenBucket(ratio=0.5).served_fraction)

    @pytest.mark.parametrize("ratio", [-0.1, 1.1])
    def test_ratio_validated(self, ratio):
        with pytest.raises(ValueError):
            TokenBucket(ratio=ratio)

    def test_burst_validated(self):
        with pytest.raises(ValueError):
            TokenBucket(ratio=0.5, burst=0.5)


class TestAdmissionGate:
    def test_unknown_task_rejected(self):
        gate = AdmissionGate.from_ratios({1: 1.0})
        assert gate.allow(1)
        assert not gate.allow(99)

    def test_per_task_isolation(self):
        gate = AdmissionGate.from_ratios({1: 1.0, 2: 0.0})
        assert all(gate.allow(1) for _ in range(10))
        assert not any(gate.allow(2) for _ in range(10))
        assert gate.bucket(1).admitted == 10
        assert gate.bucket(2).offered == 10
