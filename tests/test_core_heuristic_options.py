"""Tests for the OffloaDNN solver options (margin, branch exploration)."""

from __future__ import annotations

import pytest

from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import check_constraints, objective_value
from repro.core.optimal import OptimalSolver
from repro.workloads.largescale import RequestRate, large_scale_problem
from repro.workloads.smallscale import small_scale_problem


class TestSliceMargin:
    def test_margin_adds_rbs(self, tiny_problem):
        plain = OffloaDNNSolver().solve(tiny_problem)
        margined = OffloaDNNSolver(slice_margin_rbs=2).solve(tiny_problem)
        for task in tiny_problem.tasks:
            assert (
                margined.assignment(task).radio_blocks
                == plain.assignment(task).radio_blocks + 2
            )

    def test_margin_respects_pool(self):
        problem = large_scale_problem(RequestRate.MEDIUM)
        margined = OffloaDNNSolver(slice_margin_rbs=3).solve(problem)
        assert margined.total_radio_blocks <= problem.budgets.radio_blocks + 1e-9
        assert check_constraints(problem, margined).feasible

    def test_margin_never_reduces_admission(self, tiny_problem):
        plain = OffloaDNNSolver().solve(tiny_problem)
        margined = OffloaDNNSolver(slice_margin_rbs=5).solve(tiny_problem)
        assert (
            margined.weighted_admission_ratio
            == pytest.approx(plain.weighted_admission_ratio)
        )

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            OffloaDNNSolver(slice_margin_rbs=-1)

    def test_margin_shrinks_latency(self, tiny_problem):
        from repro.core.objective import end_to_end_latency

        plain = OffloaDNNSolver().solve(tiny_problem)
        margined = OffloaDNNSolver(slice_margin_rbs=2).solve(tiny_problem)
        for task in tiny_problem.tasks:
            bits = tiny_problem.radio.bits_per_rb(task)
            l_plain = end_to_end_latency(
                plain.assignment(task).path, plain.assignment(task).radio_blocks, bits
            )
            l_margin = end_to_end_latency(
                margined.assignment(task).path,
                margined.assignment(task).radio_blocks,
                bits,
            )
            assert l_margin < l_plain


class TestExploreBranches:
    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            OffloaDNNSolver(explore_branches=0)

    def test_one_branch_equals_first_branch(self, tiny_problem):
        first = OffloaDNNSolver(explore_branches=1).solve(tiny_problem)
        multi = OffloaDNNSolver(explore_branches=1).solve(tiny_problem)
        assert objective_value(tiny_problem, first) == pytest.approx(
            objective_value(tiny_problem, multi)
        )

    def test_more_branches_never_worse(self, tiny_problem):
        costs = []
        for k in (1, 4, 8):
            solution = OffloaDNNSolver(explore_branches=k).solve(tiny_problem)
            costs.append(objective_value(tiny_problem, solution))
        assert costs[0] >= costs[1] - 1e-12 >= costs[2] - 1e-12

    def test_all_branches_matches_optimum(self, tiny_problem):
        """Exploring every branch (8 here) must reach the optimum cost."""
        exhaustive = OffloaDNNSolver(explore_branches=100).solve(tiny_problem)
        optimal = OptimalSolver().solve(tiny_problem)
        assert objective_value(tiny_problem, exhaustive) == pytest.approx(
            objective_value(tiny_problem, optimal)
        )

    def test_feasible_on_scenarios(self):
        problem = small_scale_problem(3, seed=0)
        solution = OffloaDNNSolver(explore_branches=5).solve(problem)
        assert check_constraints(problem, solution).feasible
