"""Metrics edge cases: percentile summaries with 0 and 1 samples."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.serving.metrics import LatencyStats, ServingMetrics, TaskServingMetrics
from repro.serving.queueing import DropReason


class TestLatencyStatsEdgeCases:
    def test_empty_sample_is_nan_everywhere(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        for value in (stats.mean_s, stats.p50_s, stats.p95_s, stats.p99_s, stats.max_s):
            assert math.isnan(value)

    def test_single_sample_percentiles_degenerate(self):
        stats = LatencyStats.from_samples([0.042])
        assert stats.count == 1
        # with one sample every percentile IS the sample
        assert stats.mean_s == pytest.approx(0.042)
        assert stats.p50_s == pytest.approx(0.042)
        assert stats.p95_s == pytest.approx(0.042)
        assert stats.p99_s == pytest.approx(0.042)
        assert stats.max_s == pytest.approx(0.042)

    def test_two_samples_interpolate(self):
        stats = LatencyStats.from_samples([0.010, 0.030])
        assert stats.p50_s == pytest.approx(0.020)
        assert stats.p95_s == pytest.approx(np.percentile([0.010, 0.030], 95))
        assert stats.max_s == pytest.approx(0.030)


class TestZeroRequestMetrics:
    def _empty_task(self) -> TaskServingMetrics:
        return TaskServingMetrics.from_requests(1, [])

    def test_task_rates_are_nan_not_crash(self):
        task = self._empty_task()
        assert task.offered == 0 and task.completed == 0
        assert math.isnan(task.deadline_miss_rate)
        assert math.isnan(task.served_fraction)
        assert all(count == 0 for count in task.drops.values())

    def test_run_summary_with_no_traffic(self):
        metrics = ServingMetrics(duration_s=5.0)
        metrics.tasks[1] = self._empty_task()
        assert metrics.completed == 0
        assert metrics.throughput_rps == pytest.approx(0.0)
        assert math.isnan(metrics.deadline_miss_rate)
        rows = metrics.summary_rows()
        assert len(rows) == 1
        # p50/p95/miss cells are undefined without completions and must
        # render as "-" rather than leaking nan (or 100.0 * nan)
        assert rows[0][0] == 1
        assert rows[0][3] == "-" and rows[0][4] == "-" and rows[0][5] == "-"

    def test_zero_duration_throughput_is_nan(self):
        assert math.isnan(ServingMetrics(duration_s=0.0).throughput_rps)

    def test_drop_reasons_enumerated_even_when_empty(self):
        task = self._empty_task()
        assert set(task.drops) == set(DropReason)


class TestSingleSortPercentiles:
    """Percentiles are computed from one sort per report (satellite S2).

    The pinned values are what the per-percentile ``np.percentile``
    calls always produced; the batched ``Histogram.percentiles`` path
    must reproduce them bit for bit.
    """

    SAMPLES = [0.012, 0.051, 0.008, 0.033, 0.090, 0.027, 0.061, 0.005,
               0.044, 0.019, 0.072, 0.038]

    def test_latency_stats_pinned_values(self):
        stats = LatencyStats.from_samples(self.SAMPLES)
        values = np.asarray(self.SAMPLES, dtype=float)
        assert stats.p50_s == float(np.percentile(values, 50))
        assert stats.p95_s == float(np.percentile(values, 95))
        assert stats.p99_s == float(np.percentile(values, 99))
        # and against hard-coded references so a convention change trips
        assert stats.p50_s == pytest.approx(0.0355, abs=1e-12)
        assert stats.p95_s == pytest.approx(0.08010000000000002, abs=1e-15)
        assert stats.p99_s == pytest.approx(0.08802000000000001, abs=1e-15)

    def test_batched_percentiles_match_per_call(self):
        from repro.obs.metrics import Histogram

        rng = np.random.default_rng(7)
        histogram = Histogram(name="h")
        histogram.observe_many(rng.exponential(0.02, size=1001))
        batched = histogram.percentiles((50, 95, 99))
        assert batched == tuple(histogram.percentile(q) for q in (50, 95, 99))
