"""Unit tests for the OffloaDNN heuristic and the optimal solver."""

from __future__ import annotations

import pytest

from repro.core.catalog import Catalog
from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import check_constraints, objective_value
from repro.core.optimal import OptimalSolver
from repro.core.problem import Budgets, DOTProblem, RadioModel
from tests.conftest import make_block, make_path, make_task


def _memory_tight_problem():
    """Two tasks; the compute-cheapest paths together exceed memory, so
    the solvers must exploit the shared alternative."""
    t1 = make_task(1, priority=0.9, min_accuracy=0.7)
    t2 = make_task(2, priority=0.8, min_accuracy=0.7)
    shared = make_block("shared", compute_time_s=0.02, memory_gb=2.0)
    catalog = Catalog()
    for task in (t1, t2):
        i = task.task_id
        dedicated = make_block(f"fast{i}", compute_time_s=0.005, memory_gb=3.0)
        head = make_block(f"head{i}", compute_time_s=0.004, memory_gb=0.5)
        catalog.add_path(make_path(task, f"t{i}-fast", (dedicated,), accuracy=0.9))
        catalog.add_path(make_path(task, f"t{i}-shared", (shared, head), accuracy=0.9))
    budgets = Budgets(
        compute_time_s=2.5, training_budget_s=1000.0, memory_gb=5.0, radio_blocks=50
    )
    return DOTProblem(tasks=(t1, t2), catalog=catalog, budgets=budgets,
                      radio=RadioModel(default_bits_per_rb=350_000.0))


class TestOffloaDNNSolver:
    def test_picks_min_compute_path(self, tiny_problem):
        solution = OffloaDNNSolver().solve(tiny_problem)
        for task in tiny_problem.tasks:
            assignment = solution.assignment(task)
            assert assignment.path is not None
            assert assignment.path.path_id.endswith("cheap")

    def test_all_admitted_when_abundant(self, tiny_problem):
        solution = OffloaDNNSolver().solve(tiny_problem)
        assert solution.admitted_task_count == 3
        assert all(a.admission_ratio == 1.0 for a in solution.assignments.values())

    def test_solution_feasible(self, tiny_problem):
        solution = OffloaDNNSolver().solve(tiny_problem)
        assert check_constraints(tiny_problem, solution).feasible

    def test_memory_pressure_falls_back_to_sharing(self):
        problem = _memory_tight_problem()
        solution = OffloaDNNSolver().solve(problem)
        # fast1 (3 GB) fits; fast2 would need 6 GB total, so task 2 must
        # use the shared path (2.0 + 0.5 = 2.5 -> total 5.5 > 5? no:
        # fast1 3.0 + shared 2.0 + head2 0.5 = 5.5 > 5 -> task1 also
        # switches only if needed; verify feasibility instead of exact
        # layout, plus that the memory budget holds.
        assert solution.total_memory_gb <= problem.budgets.memory_gb + 1e-9
        assert check_constraints(problem, solution).feasible

    def test_task_without_feasible_path_rejected(self):
        task = make_task(1, min_accuracy=0.99)
        catalog = Catalog()
        catalog.add_path(make_path(task, "p", (make_block("b"),), accuracy=0.5))
        problem = DOTProblem(
            tasks=(task,),
            catalog=catalog,
            budgets=Budgets(2.5, 1000.0, 8.0, 50),
            radio=RadioModel(default_bits_per_rb=350_000.0),
        )
        solution = OffloaDNNSolver().solve(problem)
        assert solution.assignment(task).admission_ratio == 0.0
        assert solution.assignment(task).path is None

    def test_solve_time_recorded(self, tiny_problem):
        solution = OffloaDNNSolver().solve(tiny_problem)
        assert solution.solve_time_s > 0
        assert solution.solver_name == "OffloaDNN"


class TestOptimalSolver:
    def test_never_worse_than_heuristic(self, tiny_problem):
        heuristic = OffloaDNNSolver().solve(tiny_problem)
        optimal = OptimalSolver().solve(tiny_problem)
        assert objective_value(tiny_problem, optimal) <= objective_value(
            tiny_problem, heuristic
        ) + 1e-9

    def test_optimal_feasible(self, tiny_problem):
        optimal = OptimalSolver().solve(tiny_problem)
        assert check_constraints(tiny_problem, optimal).feasible

    def test_branches_explored_counted(self, tiny_problem):
        optimal = OptimalSolver().solve(tiny_problem)
        assert optimal.branches_explored == 8  # 2^3 feasible branches

    def test_memory_pruning_reduces_branches(self):
        problem = _memory_tight_problem()
        optimal = OptimalSolver().solve(problem)
        # 4 combinations exist; at least one (fast1+fast2 = 6 GB) pruned
        assert optimal.branches_explored < 4
        assert check_constraints(problem, optimal).feasible

    def test_max_branches_guard(self, tiny_problem):
        with pytest.raises(ValueError, match="max_branches"):
            OptimalSolver(max_branches=2).solve(tiny_problem)

    def test_allow_reject_explores_skip_options(self, tiny_problem):
        optimal = OptimalSolver(allow_reject=True).solve(tiny_problem)
        assert optimal.branches_explored == 27  # (2+1)^3
        assert check_constraints(tiny_problem, optimal).feasible

    def test_solver_name(self, tiny_problem):
        assert OptimalSolver().solve(tiny_problem).solver_name == "Optimum"

    def test_all_memory_infeasible_rejects_everything(self):
        task = make_task(1)
        catalog = Catalog()
        catalog.add_path(
            make_path(task, "p", (make_block("huge", memory_gb=100.0),), accuracy=0.9)
        )
        problem = DOTProblem(
            tasks=(task,),
            catalog=catalog,
            budgets=Budgets(2.5, 1000.0, 8.0, 50),
            radio=RadioModel(default_bits_per_rb=350_000.0),
        )
        solution = OptimalSolver().solve(problem)
        assert solution.assignment(task).admission_ratio == 0.0
