"""Unit tests for DepGraph-style structured pruning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnn.pruning import (
    build_dependency_graph,
    collect_groups,
    prune_module,
    prune_resnet,
    pruned_channels,
)
from repro.dnn.resnet import build_resnet18


def _model(width: int = 8, seed: int = 0):
    return build_resnet18(num_classes=10, input_size=16, width=width, seed=seed)


class TestPrunedChannels:
    def test_80pct_of_64(self):
        assert pruned_channels(64, 0.8) == 13

    def test_never_zero(self):
        assert pruned_channels(2, 0.9) == 1

    def test_zero_ratio_keeps_all(self):
        assert pruned_channels(64, 0.0) == 64

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            pruned_channels(64, 1.0)
        with pytest.raises(ValueError):
            pruned_channels(64, -0.1)


class TestDependencyGraph:
    def test_groups_have_consistent_sizes(self):
        model = _model()
        graph, members = build_dependency_graph(model, {"layer3", "layer4"})
        groups = collect_groups(graph, members)  # raises on inconsistency
        assert groups

    def test_frozen_input_group_excluded(self):
        """Pruning only layer3 must not touch layer3's output channels
        (layer4 consumes them at fixed width)."""
        model = _model()
        before_l4_in = model.blocks["layer4"].layers[0].body.layers[0].in_channels
        prune_resnet(model, {"layer3"}, 0.8)
        after_l4_in = model.blocks["layer4"].layers[0].body.layers[0].in_channels
        assert before_l4_in == after_l4_in

    def test_layer1_output_frozen_when_stem_not_pruned(self):
        """layer1's first block has an identity shortcut tying its output
        to the (unpruned) stem output: the whole stage-output group must
        stay intact."""
        model = _model()
        out_before = model.blocks["layer1"].output_shape((8, 16, 16))
        prune_resnet(model, {"layer1"}, 0.8)
        assert model.blocks["layer1"].output_shape((8, 16, 16)) == out_before


class TestPruneResnet:
    @pytest.mark.parametrize(
        "stages",
        [{"layer4"}, {"layer3", "layer4"}, {"layer2", "layer3", "layer4"},
         {"layer1", "layer2", "layer3", "layer4"}],
    )
    def test_forward_still_works(self, stages):
        model = _model()
        prune_resnet(model, stages, 0.8)
        x = np.random.default_rng(0).normal(size=(2, 3, 16, 16)).astype(np.float32)
        out = model(x)
        assert out.shape == (2, 10)
        assert np.isfinite(out).all()

    def test_param_count_drops(self):
        model = _model(width=16)
        before = model.param_count()
        prune_resnet(model, {"layer3", "layer4"}, 0.8)
        after = model.param_count()
        assert after < 0.35 * before  # layer3+layer4 dominate parameters

    def test_deeper_pruning_removes_more(self):
        shallow = _model(width=16)
        deep = _model(width=16)
        prune_resnet(shallow, {"layer4"}, 0.8)
        prune_resnet(deep, {"layer3", "layer4"}, 0.8)
        assert deep.param_count() < shallow.param_count()

    def test_higher_ratio_removes_more(self):
        light = _model(width=16)
        heavy = _model(width=16)
        prune_resnet(light, {"layer4"}, 0.5)
        prune_resnet(heavy, {"layer4"}, 0.8)
        assert heavy.param_count() < light.param_count()

    def test_flops_drop(self):
        model = _model(width=16)
        before = model.flops()
        prune_resnet(model, {"layer3", "layer4"}, 0.8)
        assert model.flops() < before

    def test_unknown_stage_raises(self):
        with pytest.raises(ValueError, match="unknown or unprunable"):
            prune_resnet(_model(), {"stem"}, 0.8)

    def test_empty_stage_set_is_noop(self):
        model = _model()
        before = model.param_count()
        assert prune_resnet(model, set(), 0.8) == 0
        assert model.param_count() == before

    def test_keeps_highest_magnitude_channels(self):
        model = _model()
        conv1 = model.blocks["layer4"].layers[0].body.layers[0]
        # inflate a specific internal channel so it must survive
        conv1.weight[5] *= 100.0
        strong = conv1.weight[5].copy()
        prune_resnet(model, {"layer4"}, 0.8)
        norms = np.sqrt((conv1.weight ** 2).sum(axis=(1, 2, 3)))
        assert np.isclose(norms.max(), np.sqrt((strong ** 2).sum()), rtol=1e-5)

    @given(st.sampled_from([0.2, 0.5, 0.8]), st.integers(min_value=0, max_value=10))
    @settings(max_examples=6, deadline=None)
    def test_prune_preserves_runnability_property(self, ratio, seed):
        model = _model(seed=seed)
        prune_resnet(model, {"layer3", "layer4"}, ratio)
        x = np.random.default_rng(seed).normal(size=(1, 3, 16, 16)).astype(np.float32)
        assert np.isfinite(model(x)).all()


class TestPruneModule:
    def test_prunes_only_stage_blocks(self):
        model = _model(width=16)
        before = model.param_count()
        groups = prune_module(model, ["layer4", "head"], ratio=0.8)
        assert groups > 0
        assert model.param_count() < before

    def test_no_stages_is_noop(self):
        model = _model()
        assert prune_module(model, ["head"], ratio=0.8) == 0
