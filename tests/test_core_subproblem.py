"""Unit tests for the per-branch (z, r) subproblem solvers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import Budgets
from repro.core.subproblem import (
    BranchItem,
    minimum_latency_rbs,
    solve_branch,
    solve_branch_convex,
)
from tests.conftest import make_block, make_path, make_task


def _item(
    task_id: int = 1,
    priority: float = 0.8,
    request_rate: float = 5.0,
    max_latency_s: float = 0.3,
    compute_time_s: float = 0.01,
    bits_per_image: float = 350_000.0,
    bits_per_rb: float = 350_000.0,
) -> BranchItem:
    from repro.core.task import QualityLevel

    quality = QualityLevel("q", bits_per_image)
    task = make_task(
        task_id,
        priority=priority,
        request_rate=request_rate,
        max_latency_s=max_latency_s,
        quality=quality,
    )
    path = make_path(task, f"p{task_id}", (make_block(f"b{task_id}", compute_time_s=compute_time_s),))
    return BranchItem(task=task, path=path, bits_per_rb=bits_per_rb)


def _budgets(radio: int = 50, compute: float = 2.5) -> Budgets:
    return Budgets(
        compute_time_s=compute, training_budget_s=1000.0, memory_gb=8.0, radio_blocks=radio
    )


class TestMinimumLatencyRbs:
    def test_formula(self):
        # 350 kb, 0.35 Mbps/RB, 0.3 s limit, 0.1 s compute -> 1/(0.2) = 5
        assert minimum_latency_rbs(350_000.0, 350_000.0, 0.3, 0.1) == 5

    def test_compute_exceeding_latency_unreachable(self):
        assert minimum_latency_rbs(350_000.0, 350_000.0, 0.1, 0.2) >= 10**9

    def test_at_least_one_rb(self):
        assert minimum_latency_rbs(1.0, 1e9, 10.0, 0.0) == 1


class TestSolveBranchSingleTask:
    def test_full_admission_when_abundant(self):
        alloc = solve_branch([_item()], _budgets())
        assert alloc.admission == [1.0]
        # rate needs ceil(5*350k/350k) = 5 RBs; latency needs ceil(1/0.29)=4
        assert alloc.radio_blocks == [5]

    def test_latency_drives_rbs_when_tight(self):
        item = _item(max_latency_s=0.15, compute_time_s=0.05)
        alloc = solve_branch([item], _budgets())
        # slack 0.1 s -> 10 RBs needed, above the 5 rate-driven RBs
        assert alloc.radio_blocks == [10]
        assert alloc.admission == [1.0]

    def test_infeasible_latency_rejected(self):
        item = _item(max_latency_s=0.009, compute_time_s=0.01)
        alloc = solve_branch([item], _budgets())
        assert alloc.admission == [0.0]
        assert alloc.radio_blocks == [0]

    def test_partial_admission_under_radio_scarcity(self):
        item = _item(request_rate=10.0)  # needs 10 RBs at z=1
        alloc = solve_branch([item], _budgets(radio=4))
        assert 0.0 < alloc.admission[0] < 1.0
        z, r = alloc.admission[0], alloc.radio_blocks[0]
        assert z * r <= 4 + 1e-9

    def test_compute_budget_caps_admission(self):
        # 5 req/s x 1 dev-s each = 5 dev-s/s demanded, 2.5 available
        item = _item(request_rate=5.0, compute_time_s=1.0, max_latency_s=2.0)
        alloc = solve_branch([item], _budgets(compute=2.5))
        assert alloc.admission[0] == pytest.approx(0.5)

    def test_empty_branch(self):
        alloc = solve_branch([], _budgets())
        assert alloc.admission == []


class TestSolveBranchMultiTask:
    def test_priority_order_preserved_under_scarcity(self):
        items = [
            _item(task_id=i, priority=1.0 - 0.1 * i, request_rate=5.0)
            for i in range(1, 6)
        ]
        alloc = solve_branch(items, _budgets(radio=12))
        # 5 RBs each; only the first two fit fully
        assert alloc.admission[0] == 1.0
        assert alloc.admission[1] == 1.0
        assert alloc.admission[2] < 1.0

    def test_total_radio_within_budget(self):
        items = [_item(task_id=i, request_rate=7.5) for i in range(1, 8)]
        alloc = solve_branch(items, _budgets(radio=20))
        consumed = sum(z * r for z, r in zip(alloc.admission, alloc.radio_blocks))
        assert consumed <= 20 + 1e-9

    def test_total_compute_within_budget(self):
        items = [_item(task_id=i, compute_time_s=0.2) for i in range(1, 6)]
        alloc = solve_branch(items, _budgets(compute=2.0))
        consumed = sum(
            z * it.task.request_rate * it.compute_time_s
            for z, it in zip(alloc.admission, items)
        )
        assert consumed <= 2.0 + 1e-9

    def test_rejected_tasks_free_resources_for_lower_priority(self):
        # first task infeasible by latency, second should still get full
        items = [
            _item(task_id=1, max_latency_s=0.005, compute_time_s=0.01),
            _item(task_id=2),
        ]
        alloc = solve_branch(items, _budgets())
        assert alloc.admission == [0.0, 1.0]

    def test_rate_constraint_respected_per_task(self):
        items = [_item(task_id=i, request_rate=3.0) for i in range(1, 4)]
        alloc = solve_branch(items, _budgets())
        for z, r, item in zip(alloc.admission, alloc.radio_blocks, items):
            if z > 0:
                assert z * item.task.request_rate * item.path.bits_per_image <= (
                    item.bits_per_rb * r * (1 + 1e-9)
                )


class TestConvexCrossCheck:
    def test_scipy_solution_feasible(self):
        items = [
            _item(task_id=i, priority=1.0 - 0.2 * i, request_rate=5.0)
            for i in range(1, 4)
        ]
        budgets = _budgets(radio=20)
        alloc = solve_branch_convex(items, budgets, alpha=0.5)
        consumed = sum(z * r for z, r in zip(alloc.admission, alloc.radio_blocks))
        assert consumed <= budgets.radio_blocks + 1e-6
        for z, r, item in zip(alloc.admission, alloc.radio_blocks, items):
            if z > 0:
                # rate constraint (1e)
                assert z * item.task.request_rate * item.path.bits_per_image <= (
                    item.bits_per_rb * r * (1 + 1e-6)
                )
                # latency constraint (1g)
                assert r >= item.min_latency_rbs()

    def test_empty_branch(self):
        alloc = solve_branch_convex([], _budgets(), alpha=0.5)
        assert alloc.admission == []

    def test_structured_admission_at_least_convex(self):
        """The structured solver maximizes admission lexicographically, so
        its weighted admission dominates the Eq.-(1a)-minimizing convex
        solution."""
        items = [
            _item(task_id=i, priority=1.0 - 0.15 * i, request_rate=5.0)
            for i in range(1, 5)
        ]
        budgets = _budgets(radio=18)
        structured = solve_branch(items, budgets)
        convex = solve_branch_convex(items, budgets, alpha=0.5)
        w_structured = sum(
            z * it.task.priority for z, it in zip(structured.admission, items)
        )
        w_convex = sum(z * it.task.priority for z, it in zip(convex.admission, items))
        assert w_structured >= w_convex - 1e-6


@given(
    radio=st.integers(min_value=1, max_value=60),
    compute=st.floats(min_value=0.1, max_value=5.0),
    rates=st.lists(st.floats(min_value=0.5, max_value=10.0), min_size=1, max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_solve_branch_always_feasible_property(radio, compute, rates):
    """For any scarcity level, the structured solver's output respects
    the radio, compute, rate and latency constraints."""
    items = [
        _item(task_id=i + 1, priority=1.0 - 0.1 * i, request_rate=rate)
        for i, rate in enumerate(rates)
    ]
    budgets = _budgets(radio=radio, compute=compute)
    alloc = solve_branch(items, budgets)
    radio_used = sum(z * r for z, r in zip(alloc.admission, alloc.radio_blocks))
    compute_used = sum(
        z * it.task.request_rate * it.compute_time_s
        for z, it in zip(alloc.admission, items)
    )
    assert radio_used <= budgets.radio_blocks + 1e-9
    assert compute_used <= budgets.compute_time_s + 1e-9
    for z, r, item in zip(alloc.admission, alloc.radio_blocks, items):
        assert 0.0 <= z <= 1.0
        if z > 0:
            assert r >= item.min_latency_rbs()
            assert z * item.task.request_rate * item.path.bits_per_image <= (
                item.bits_per_rb * r * (1 + 1e-9)
            )
        else:
            assert r == 0


@given(
    radio=st.integers(min_value=0, max_value=200),
    pool_radio=st.floats(min_value=0.0, max_value=200.0),
    pool_compute=st.floats(min_value=0.0, max_value=5.0),
    rate=st.floats(min_value=0.1, max_value=50.0),
    latency=st.floats(min_value=0.05, max_value=2.0),
    compute_time=st.floats(min_value=0.0, max_value=0.1),
    bits=st.floats(min_value=0.0, max_value=2_000_000.0),
    bpr=st.floats(min_value=10_000.0, max_value=2_000_000.0),
)
@settings(max_examples=300, deadline=None)
def test_closed_form_admission_matches_reference(
    radio, pool_radio, pool_compute, rate, latency, compute_time, bits, bpr
):
    """The O(1) candidate scan returns the exact (z, r) of the O(R)
    enumeration, for any item geometry and any pool state."""
    from repro.core.subproblem import (
        _best_admission_for_item,
        _best_admission_for_item_reference,
    )

    item = _item(
        request_rate=rate,
        max_latency_s=latency,
        compute_time_s=compute_time,
        bits_per_image=bits,
        bits_per_rb=bpr,
    )
    fast = _best_admission_for_item(item, pool_radio, pool_compute, radio)
    slow = _best_admission_for_item_reference(item, pool_radio, pool_compute, radio)
    assert fast == slow


def test_closed_form_matches_reference_on_cascade():
    """Sequential pool states of a real cascade hit the same (z, r)."""
    from repro.core.subproblem import (
        _best_admission_for_item,
        _best_admission_for_item_reference,
    )

    items = [
        _item(task_id=i, priority=1.0 - 0.05 * i, request_rate=2.5 + 0.5 * i,
              max_latency_s=0.2 + 0.02 * i)
        for i in range(1, 21)
    ]
    budgets = _budgets(radio=100, compute=10.0)
    remaining_radio = float(budgets.radio_blocks)
    remaining_compute = float(budgets.compute_time_s)
    for item in items:
        fast = _best_admission_for_item(
            item, remaining_radio, remaining_compute, budgets.radio_blocks
        )
        slow = _best_admission_for_item_reference(
            item, remaining_radio, remaining_compute, budgets.radio_blocks
        )
        assert fast == slow
        z, r = fast
        remaining_radio -= z * r
        remaining_compute -= z * item.task.request_rate * item.compute_time_s


class TestZeroBitsPath:
    """bits_per_image == 0 models cached inputs; it must be admitted at
    the 1-RB control minimum, not crash the solvers."""

    def test_solve_branch_zero_bits(self):
        item = _item(bits_per_image=0.0)
        alloc = solve_branch([item], _budgets())
        assert alloc.admission == [1.0]
        assert alloc.radio_blocks == [1]

    def test_solve_branch_convex_zero_bits_no_zerodivision(self):
        items = [_item(task_id=1, bits_per_image=0.0),
                 _item(task_id=2, priority=0.6)]
        alloc = solve_branch_convex(items, _budgets(), alpha=0.5)
        for z, r in zip(alloc.admission, alloc.radio_blocks):
            assert 0.0 <= z <= 1.0
            assert r >= 0

    def test_solve_branch_convex_zero_compute_path(self):
        """A path of zero-compute blocks must not divide by c = 0."""
        items = [_item(task_id=1, compute_time_s=0.0)]
        alloc = solve_branch_convex(items, _budgets(), alpha=0.5)
        assert 0.0 <= alloc.admission[0] <= 1.0

    def test_solve_branch_convex_zero_headroom_budgets(self):
        items = [_item(task_id=1)]
        budgets = Budgets(
            compute_time_s=0.0, training_budget_s=1000.0,
            memory_gb=8.0, radio_blocks=0,
        )
        alloc = solve_branch_convex(items, budgets, alpha=0.5)
        assert alloc.admission == [0.0]
        assert alloc.radio_blocks == [0]
