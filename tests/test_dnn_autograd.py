"""Gradient checks for the reverse-mode engine.

Every layer's backward pass is validated against central finite
differences of the training-mode forward pass — the canonical test for
a hand-written autograd.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn import autograd, ops
from repro.dnn.graph import NamedModule, Residual, Sequential
from repro.dnn.layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
)

RNG = np.random.default_rng(0)


def numerical_grad(f, x: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    """Central finite differences of a scalar function of ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = f()
        flat[i] = original - eps
        down = f()
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_input_grad(layer, x: np.ndarray, rtol: float = 2e-2, atol: float = 1e-4):
    """Compare analytic grad wrt input against finite differences."""
    x = x.astype(np.float64)
    # scalar objective: sum of outputs weighted by a fixed random tensor
    out, cache = autograd.forward(layer, x)
    weights = np.random.default_rng(1).normal(size=out.shape)

    def objective():
        y, _ = autograd.forward(layer, x)
        return float((y * weights).sum())

    analytic, _ = autograd.backward(layer, cache, weights)
    numeric = numerical_grad(objective, x)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


def check_param_grads(layer, x: np.ndarray, rtol: float = 2e-2, atol: float = 1e-4):
    """Compare analytic parameter gradients against finite differences."""
    x = x.astype(np.float64)
    out, cache = autograd.forward(layer, x)
    weights = np.random.default_rng(2).normal(size=out.shape)
    _, param_grads = autograd.backward(layer, cache, weights)
    params = layer.parameters()
    assert len(params) == len(param_grads)

    def objective():
        y, _ = autograd.forward(layer, x)
        return float((y * weights).sum())

    for param, analytic in zip(params, param_grads):
        if analytic is None:
            continue
        param64 = param.astype(np.float64)
        param[...] = param64  # ensure float64 view semantics stay intact
        numeric = numerical_grad(objective, param)
        np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


class TestPrimitiveGradients:
    def test_conv2d_input_and_params(self):
        layer = Conv2d(2, 3, kernel=3, stride=1, padding=1, bias=True, rng=RNG)
        x = RNG.normal(size=(2, 2, 5, 5))
        check_input_grad(layer, x)
        check_param_grads(layer, x)

    def test_conv2d_strided(self):
        layer = Conv2d(2, 2, kernel=3, stride=2, padding=1, rng=RNG)
        x = RNG.normal(size=(1, 2, 6, 6))
        check_input_grad(layer, x)
        check_param_grads(layer, x)

    def test_depthwise_conv(self):
        layer = DepthwiseConv2d(3, kernel=3, stride=1, padding=1, rng=RNG)
        x = RNG.normal(size=(2, 3, 5, 5))
        check_input_grad(layer, x)
        check_param_grads(layer, x)

    def test_depthwise_conv_strided(self):
        layer = DepthwiseConv2d(2, kernel=3, stride=2, padding=1, rng=RNG)
        x = RNG.normal(size=(1, 2, 6, 6))
        check_input_grad(layer, x)

    def test_batchnorm(self):
        layer = BatchNorm2d(3)
        layer.gamma = RNG.normal(1.0, 0.1, 3).astype(np.float32)
        layer.beta = RNG.normal(0.0, 0.1, 3).astype(np.float32)
        x = RNG.normal(size=(4, 3, 3, 3))
        check_input_grad(layer, x, rtol=5e-2, atol=5e-4)
        check_param_grads(layer, x, rtol=5e-2, atol=5e-4)

    def test_relu(self):
        x = RNG.normal(size=(2, 3, 4, 4)) + 0.1  # avoid kink at exactly 0
        check_input_grad(ReLU(), x)

    def test_relu6(self):
        x = RNG.normal(size=(2, 3, 4, 4)) * 3.0 + 0.2
        check_input_grad(ReLU6(), x)

    def test_maxpool(self):
        layer = MaxPool2d(kernel=2, stride=2)
        x = RNG.normal(size=(2, 2, 4, 4))
        check_input_grad(layer, x)

    def test_global_avg_pool(self):
        x = RNG.normal(size=(2, 3, 4, 4))
        check_input_grad(GlobalAvgPool(), x)

    def test_flatten(self):
        x = RNG.normal(size=(2, 3, 2, 2))
        check_input_grad(Flatten(), x)

    def test_linear(self):
        layer = Linear(6, 4, rng=RNG)
        x = RNG.normal(size=(3, 6))
        check_input_grad(layer, x)
        check_param_grads(layer, x)


class TestCompositeGradients:
    def test_sequential_chain(self):
        seq = Sequential(
            Conv2d(2, 3, kernel=3, padding=1, rng=RNG),
            ReLU(),
            Conv2d(3, 2, kernel=1, rng=RNG),
        )
        x = RNG.normal(size=(1, 2, 4, 4))
        check_input_grad(seq, x)
        check_param_grads(seq, x)

    def test_residual_identity(self):
        body = Sequential(
            Conv2d(2, 2, kernel=3, padding=1, rng=RNG),
            BatchNorm2d(2),
        )
        res = Residual(body)
        x = RNG.normal(size=(2, 2, 4, 4))
        check_input_grad(res, x, rtol=5e-2, atol=5e-4)

    def test_residual_projection(self):
        body = Sequential(Conv2d(2, 4, kernel=3, stride=2, padding=1, rng=RNG))
        shortcut = Sequential(Conv2d(2, 4, kernel=1, stride=2, rng=RNG))
        res = Residual(body, shortcut)
        x = RNG.normal(size=(1, 2, 4, 4))
        check_input_grad(res, x)
        check_param_grads(res, x)

    def test_linear_residual(self):
        body = Sequential(Conv2d(2, 2, kernel=1, rng=RNG))
        res = Residual(body, activation="linear")
        x = RNG.normal(size=(1, 2, 3, 3))
        check_input_grad(res, x)

    def test_named_module(self):
        mod = NamedModule("head", GlobalAvgPool(), Flatten(), Linear(3, 2, rng=RNG))
        x = RNG.normal(size=(2, 3, 4, 4))
        check_input_grad(mod, x)
        check_param_grads(mod, x)


class TestLossGradient:
    def test_softmax_cross_entropy_grad(self):
        logits = RNG.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])
        loss, grad = autograd.softmax_cross_entropy_grad(logits, labels)
        assert loss == pytest.approx(ops.cross_entropy(logits, labels))

        def objective():
            l, _ = autograd.softmax_cross_entropy_grad(logits, labels)
            return l

        numeric = numerical_grad(objective, logits)
        np.testing.assert_allclose(grad, numeric, rtol=2e-2, atol=1e-5)


class TestCol2Im:
    def test_adjoint_of_im2col(self):
        """<im2col(x), c> == <x, col2im(c)> — the defining adjoint identity."""
        x = RNG.normal(size=(2, 3, 6, 6))
        cols, _, _ = ops.im2col(x, kernel=3, stride=2, padding=1)
        c = RNG.normal(size=cols.shape)
        lhs = float((cols * c).sum())
        folded = autograd.col2im(c, x.shape, kernel=3, stride=2, padding=1)
        rhs = float((x * folded).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)
