"""Unit tests for the object-detection substrate (mAP semantics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnn.detection import (
    BoundingBox,
    Detection,
    DetectionHead,
    average_precision,
    build_detector,
    decode_predictions,
    iou,
    make_detection_dataset,
    mean_average_precision,
    nms,
)
from repro.dnn.resnet import build_resnet18


def box(x0, y0, x1, y1):
    return BoundingBox(x0, y0, x1, y1)


class TestIoU:
    def test_identical_boxes(self):
        b = box(0, 0, 10, 10)
        assert iou(b, b) == 1.0

    def test_disjoint_boxes(self):
        assert iou(box(0, 0, 5, 5), box(6, 6, 10, 10)) == 0.0

    def test_half_overlap(self):
        # 5x10 intersection over (100 + 100 - 50) union
        assert iou(box(0, 0, 10, 10), box(5, 0, 15, 10)) == pytest.approx(50 / 150)

    def test_contained_box(self):
        assert iou(box(0, 0, 10, 10), box(2, 2, 8, 8)) == pytest.approx(36 / 100)

    def test_invalid_box_rejected(self):
        with pytest.raises(ValueError):
            box(5, 0, 0, 5)

    @given(
        st.floats(min_value=0, max_value=20),
        st.floats(min_value=0, max_value=20),
        st.floats(min_value=1, max_value=10),
        st.floats(min_value=1, max_value=10),
        st.floats(min_value=0, max_value=20),
        st.floats(min_value=0, max_value=20),
        st.floats(min_value=1, max_value=10),
        st.floats(min_value=1, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_iou_properties(self, ax, ay, aw, ah, bx, by, bw, bh):
        a = box(ax, ay, ax + aw, ay + ah)
        b = box(bx, by, bx + bw, by + bh)
        value = iou(a, b)
        assert 0.0 <= value <= 1.0 + 1e-12
        assert value == pytest.approx(iou(b, a))  # symmetry


class TestNms:
    def test_suppresses_overlapping_same_class(self):
        detections = [
            Detection(box(0, 0, 10, 10), label=0, score=0.9),
            Detection(box(1, 1, 11, 11), label=0, score=0.8),
        ]
        assert len(nms(detections, 0.5)) == 1

    def test_keeps_highest_score(self):
        detections = [
            Detection(box(0, 0, 10, 10), label=0, score=0.7),
            Detection(box(1, 1, 11, 11), label=0, score=0.95),
        ]
        kept = nms(detections, 0.5)
        assert kept[0].score == 0.95

    def test_different_classes_not_suppressed(self):
        detections = [
            Detection(box(0, 0, 10, 10), label=0, score=0.9),
            Detection(box(0, 0, 10, 10), label=1, score=0.8),
        ]
        assert len(nms(detections, 0.5)) == 2

    def test_disjoint_boxes_kept(self):
        detections = [
            Detection(box(0, 0, 5, 5), label=0, score=0.9),
            Detection(box(20, 20, 25, 25), label=0, score=0.8),
        ]
        assert len(nms(detections, 0.5)) == 2

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            nms([], iou_threshold=1.5)


class TestAveragePrecision:
    def _truth(self):
        return [[Detection(box(0, 0, 10, 10), label=0)],
                [Detection(box(5, 5, 15, 15), label=0)]]

    def test_perfect_predictions(self):
        truth = self._truth()
        preds = [
            [Detection(t[0].box, label=0, score=0.9)] for t in truth
        ]
        assert average_precision(preds, truth, label=0) == pytest.approx(1.0)

    def test_no_predictions_zero_ap(self):
        truth = self._truth()
        assert average_precision([[], []], truth, label=0) == pytest.approx(0.0)

    def test_wrong_location_zero_ap(self):
        truth = self._truth()
        preds = [[Detection(box(50, 50, 60, 60), label=0, score=0.9)], []]
        assert average_precision(preds, truth, label=0) == pytest.approx(0.0)

    def test_absent_class_nan(self):
        truth = self._truth()
        assert np.isnan(average_precision([[], []], truth, label=7))

    def test_duplicate_predictions_penalized(self):
        truth = [[Detection(box(0, 0, 10, 10), label=0)]]
        one = [[Detection(box(0, 0, 10, 10), label=0, score=0.9)]]
        duplicated = [[
            Detection(box(0, 0, 10, 10), label=0, score=0.9),
            Detection(box(0, 0, 10, 10), label=0, score=0.8),
        ]]
        assert average_precision(duplicated, truth, 0) <= average_precision(one, truth, 0)

    def test_mismatched_image_count(self):
        with pytest.raises(ValueError):
            average_precision([[]], [[], []], label=0)

    def test_partial_detection_intermediate_ap(self):
        truth = self._truth()
        preds = [
            [Detection(truth[0][0].box, label=0, score=0.9)],
            [],  # second object missed
        ]
        ap = average_precision(preds, truth, label=0)
        assert 0.0 < ap < 1.0


class TestMeanAveragePrecision:
    def test_averages_over_present_classes(self):
        truth = [[
            Detection(box(0, 0, 10, 10), label=0),
            Detection(box(20, 20, 30, 30), label=1),
        ]]
        preds = [[
            Detection(box(0, 0, 10, 10), label=0, score=0.9),
            # class 1 missed entirely
        ]]
        value = mean_average_precision(preds, truth, num_classes=3)
        assert value == pytest.approx(0.5)  # (1.0 + 0.0) / 2, class 2 absent

    def test_no_truth_nan(self):
        assert np.isnan(mean_average_precision([[]], [[]], num_classes=2))


class TestDetectionHeadAndDecode:
    def test_head_output_shape(self):
        backbone = build_resnet18(num_classes=10, input_size=16, width=8)
        _, head = build_detector(backbone, num_classes=3)
        features = backbone.features(np.zeros((2, 3, 16, 16), dtype=np.float32))
        out = head(features)
        assert out.shape == (2, 5 + 3, features.shape[2], features.shape[3])

    def test_decode_thresholds_low_scores(self):
        raw = np.full((1, 5 + 2, 2, 2), -10.0, dtype=np.float32)  # low objectness
        assert decode_predictions(raw, image_size=16) == [[]]

    def test_decode_emits_confident_cells(self):
        raw = np.zeros((1, 5 + 2, 2, 2), dtype=np.float32)
        raw[0, 0, 0, 0] = 10.0  # objectness at one cell
        raw[0, 5, 0, 0] = 5.0  # class 0 logit
        detections = decode_predictions(raw, image_size=16, score_threshold=0.5)
        assert len(detections[0]) == 1
        det = detections[0][0]
        assert det.label == 0
        # the cell (0,0) owns the top-left 8x8 region
        assert det.box.x_max <= 16.0
        assert det.box.x_min < 8.0

    def test_decode_validates_channels(self):
        with pytest.raises(ValueError, match="no class channels"):
            decode_predictions(np.zeros((1, 5, 2, 2)), image_size=16)

    def test_end_to_end_forward(self):
        dataset = make_detection_dataset(num_images=2, image_size=16, num_classes=3)
        backbone = build_resnet18(num_classes=10, input_size=16, width=8)
        _, head = build_detector(backbone, num_classes=3)
        features = backbone.features(dataset.images)
        raw = head(features)
        detections = decode_predictions(raw, image_size=16, score_threshold=0.0)
        mAP = mean_average_precision(detections, dataset.annotations, num_classes=3)
        assert np.isnan(mAP) or 0.0 <= mAP <= 1.0  # untrained: any valid value


class TestDetectionDataset:
    def test_shapes_and_annotations(self):
        dataset = make_detection_dataset(num_images=4, image_size=24, num_classes=3)
        assert dataset.images.shape == (4, 3, 24, 24)
        assert len(dataset.annotations) == 4
        assert all(len(a) >= 1 for a in dataset.annotations)

    def test_objects_within_bounds(self):
        dataset = make_detection_dataset(num_images=6, image_size=24, num_classes=3)
        for annotations in dataset.annotations:
            for obj in annotations:
                assert 0 <= obj.box.x_min < obj.box.x_max <= 24
                assert 0 <= obj.box.y_min < obj.box.y_max <= 24

    def test_object_region_brighter(self):
        dataset = make_detection_dataset(num_images=1, image_size=24, num_classes=1,
                                         max_objects=1, seed=3)
        obj = dataset.annotations[0][0]
        channel = obj.label % 3
        image = dataset.images[0, channel]
        inside = image[
            int(obj.box.y_min) : int(obj.box.y_max),
            int(obj.box.x_min) : int(obj.box.x_max),
        ].mean()
        assert inside > image.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            make_detection_dataset(num_images=0)
