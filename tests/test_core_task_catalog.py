"""Unit tests for tasks, quality levels, blocks, paths and the catalog."""

from __future__ import annotations

import pytest

from repro.core.catalog import Block, Catalog, Path
from repro.core.task import QualityLevel, Task
from tests.conftest import make_block, make_path, make_task


class TestQualityLevel:
    def test_valid(self):
        q = QualityLevel("half", 100_000.0, accuracy_factor=0.9)
        assert q.bits_per_image == 100_000.0

    def test_zero_bits_is_valid(self):
        """β(q) = 0 models cached/pre-staged inputs at the edge."""
        q = QualityLevel("cached", 0.0)
        assert q.bits_per_image == 0.0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QualityLevel("bad", -1.0)

    def test_invalid_accuracy_factor(self):
        with pytest.raises(ValueError):
            QualityLevel("bad", 1.0, accuracy_factor=0.0)
        with pytest.raises(ValueError):
            QualityLevel("bad", 1.0, accuracy_factor=1.5)


class TestTask:
    def test_default_quality_is_highest_fidelity(self):
        q_low = QualityLevel("low", 50_000.0, accuracy_factor=0.8)
        q_high = QualityLevel("high", 350_000.0, accuracy_factor=1.0)
        task = Task(
            task_id=1, name="t", method="cls", priority=0.5, request_rate=1.0,
            min_accuracy=0.5, max_latency_s=0.5, qualities=(q_low, q_high),
        )
        assert task.default_quality is q_high

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"priority": 1.5},
            {"priority": -0.1},
            {"request_rate": 0.0},
            {"min_accuracy": 1.2},
            {"max_latency_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(
            task_id=1, name="t", method="cls", priority=0.5, request_rate=1.0,
            min_accuracy=0.5, max_latency_s=0.5,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            Task(**base)

    def test_empty_qualities_rejected(self):
        with pytest.raises(ValueError):
            Task(
                task_id=1, name="t", method="cls", priority=0.5, request_rate=1.0,
                min_accuracy=0.5, max_latency_s=0.5, qualities=(),
            )


class TestBlock:
    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            Block("b", "d", compute_time_s=-1.0, memory_gb=0.1)
        with pytest.raises(ValueError):
            Block("b", "d", compute_time_s=0.1, memory_gb=-1.0)
        with pytest.raises(ValueError):
            Block("b", "d", compute_time_s=0.1, memory_gb=0.1, training_cost_s=-1.0)


class TestPath:
    def test_compute_time_sums_blocks(self):
        task = make_task(1)
        blocks = (make_block("a", compute_time_s=0.01), make_block("b", compute_time_s=0.02))
        path = make_path(task, "p", blocks)
        assert path.compute_time_s == pytest.approx(0.03)

    def test_effective_accuracy_scaled_by_quality(self):
        q = QualityLevel("half", 100_000.0, accuracy_factor=0.5)
        task = make_task(1, quality=q)
        path = make_path(task, "p", (make_block("a"),), accuracy=0.8)
        assert path.effective_accuracy == pytest.approx(0.4)

    def test_block_ids(self):
        task = make_task(1)
        path = make_path(task, "p", (make_block("a"), make_block("b")))
        assert path.block_ids() == frozenset({"a", "b"})

    def test_empty_blocks_rejected(self):
        task = make_task(1)
        with pytest.raises(ValueError):
            Path(
                path_id="p", dnn_id="d", task_id=1, blocks=(),
                accuracy=0.5, quality=task.qualities[0],
            )

    def test_bad_accuracy_rejected(self):
        task = make_task(1)
        with pytest.raises(ValueError):
            make_path(task, "p", (make_block("a"),), accuracy=1.2)


class TestCatalog:
    def test_add_and_lookup(self):
        task = make_task(1)
        catalog = Catalog()
        catalog.add_path(make_path(task, "p0", (make_block("a"),)))
        assert len(catalog.paths_for(task)) == 1
        assert len(catalog.paths_for(99)) == 0

    def test_duplicate_path_id_rejected(self):
        task = make_task(1)
        catalog = Catalog()
        catalog.add_path(make_path(task, "p0", (make_block("a"),)))
        with pytest.raises(ValueError, match="duplicate path_id"):
            catalog.add_path(make_path(task, "p0", (make_block("b"),)))

    def test_all_blocks_dedup(self):
        task = make_task(1)
        shared = make_block("shared")
        catalog = Catalog()
        catalog.add_path(make_path(task, "p0", (shared, make_block("x"))))
        catalog.add_path(make_path(task, "p1", (shared, make_block("y"))))
        assert set(catalog.all_blocks()) == {"shared", "x", "y"}

    def test_inconsistent_block_costs_detected(self):
        task = make_task(1)
        catalog = Catalog()
        catalog.add_path(make_path(task, "p0", (make_block("s", memory_gb=0.1),)))
        catalog.add_path(make_path(task, "p1", (make_block("s", memory_gb=0.9),)))
        with pytest.raises(ValueError, match="inconsistent"):
            catalog.all_blocks()

    def test_validate_requires_paths_for_all_tasks(self):
        t1, t2 = make_task(1), make_task(2)
        catalog = Catalog()
        catalog.add_path(make_path(t1, "p0", (make_block("a"),)))
        with pytest.raises(ValueError, match="without candidate paths"):
            catalog.validate((t1, t2))

    def test_dnn_ids_collected(self):
        task = make_task(1)
        catalog = Catalog()
        catalog.add_path(make_path(task, "p0", (make_block("a", dnn_id="d1"),)))
        assert catalog.dnn_ids() == frozenset({"d1"})
