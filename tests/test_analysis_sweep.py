"""Tests for the sensitivity sweeps."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import (
    sweep_alpha,
    sweep_memory_budget,
    sweep_radio_budget,
    sweep_request_rate,
)


class TestRadioSweep:
    def test_admission_monotone_in_rbs(self):
        points = sweep_radio_budget([25, 50, 100, 200])
        admissions = [p.weighted_admission for p in points]
        assert all(a <= b + 1e-9 for a, b in zip(admissions, admissions[1:]))

    def test_saturation_above_needed_pool(self):
        """Beyond the demand point, more RBs change nothing."""
        points = sweep_radio_budget([150, 300])
        assert points[0].weighted_admission == pytest.approx(
            points[1].weighted_admission
        )

    def test_scarcity_cuts_admission(self):
        points = sweep_radio_budget([10, 100])
        assert points[0].admitted_tasks < points[1].admitted_tasks


class TestMemorySweep:
    def test_sharing_makes_memory_non_binding_early(self):
        """With block sharing/pruning, even a quarter of the Table IV
        budget supports all 20 tasks."""
        points = sweep_memory_budget([4.0, 16.0])
        assert points[0].admitted_tasks == points[1].admitted_tasks

    def test_tiny_memory_forces_cheaper_paths_or_rejection(self):
        points = sweep_memory_budget([0.5, 16.0])
        assert points[0].memory_gb <= 0.5 + 1e-9
        # admission can only improve with more memory
        assert points[0].weighted_admission <= points[1].weighted_admission + 1e-9


class TestAlphaSweep:
    def test_objective_composition_changes(self):
        points = sweep_alpha([0.0, 0.5, 1.0])
        # with alpha=1 the objective is pure (weighted) rejection
        assert points[2].objective >= 0.0
        # admission itself is alpha-independent in the current solver
        # (admission-first), so the admitted count is stable
        counts = {p.admitted_tasks for p in points}
        assert len(counts) == 1


class TestRateSweep:
    def test_admission_degrades_with_load(self):
        points = sweep_request_rate([2.0, 5.0, 8.0, 12.0])
        admissions = [p.weighted_admission for p in points]
        assert all(a >= b - 1e-9 for a, b in zip(admissions, admissions[1:]))
        assert admissions[0] > admissions[-1]

    def test_radio_saturates_with_load(self):
        points = sweep_request_rate([2.0, 12.0])
        assert points[1].radio_blocks >= points[0].radio_blocks - 1e-9
