"""Metrics registry unit tests: instruments, collisions, DES sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emulator.simulator import Simulator
from repro.obs.metrics import Counter, DesSampler, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_gauge_set_vs_sample(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        assert gauge.value == 4.0
        assert gauge.series == []
        gauge.sample(1.0, 7.0)
        assert gauge.value == 7.0
        assert gauge.series == [(1.0, 7.0)]

    def test_histogram_matches_numpy_percentile(self):
        histogram = Histogram("h")
        samples = [0.010, 0.030, 0.020, 0.500]
        for value in samples:
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(np.mean(samples))
        assert histogram.percentile(95) == float(np.percentile(samples, 95))
        assert histogram.max == 0.500
        assert histogram.sum == pytest.approx(sum(samples))

    def test_empty_histogram_is_nan(self):
        histogram = Histogram("h")
        assert histogram.count == 0
        assert histogram.sum == 0.0
        assert np.isnan(histogram.mean)
        assert np.isnan(histogram.percentile(50))
        assert np.isnan(histogram.max)

    def test_histogram_summary_keys(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        assert set(histogram.summary()) == {"count", "mean", "p50", "p95", "p99", "max"}


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_name_bound_to_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="another kind"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="another kind"):
            registry.histogram("x")

    def test_snapshot_is_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("depth").sample(0.5, 2.0)
        registry.histogram("lat").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 3.0}
        assert snapshot["gauges"]["depth"]["series"] == [[0.5, 2.0]]
        assert snapshot["histograms"]["lat"]["count"] == 1
        json.dumps(snapshot)  # must not raise


class TestDesSampler:
    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            DesSampler(MetricsRegistry(), period_s=0.0)

    def test_samples_on_virtual_clock(self):
        registry = MetricsRegistry()
        sim = Simulator()
        sampler = DesSampler(registry, period_s=0.05)
        sampler.add_probe("clock", lambda: sim.now * 10)
        sampler.attach(sim, while_fn=lambda: sim.now < 0.149)
        sim.run()
        series = registry.gauge("clock").series
        assert [t for t, _ in series] == pytest.approx([0.0, 0.05, 0.10, 0.15])
        assert [v for _, v in series] == pytest.approx([0.0, 0.5, 1.0, 1.5])
        assert sampler.samples_taken == 4

    def test_does_not_keep_drained_queue_alive(self):
        """With while_fn false the sampler stops after one tick."""
        registry = MetricsRegistry()
        sim = Simulator()
        sampler = DesSampler(registry, period_s=0.05)
        sampler.add_probe("x", lambda: 1.0)
        sampler.attach(sim, while_fn=lambda: sim.pending > 0)
        sim.schedule(0.12, lambda: None)
        sim.run()
        # ticks at 0, 0.05, 0.10 see the workload event pending; the
        # tick at 0.15 (after it ran) sees an empty queue and stops
        assert sampler.samples_taken == 4
        assert sim.now == pytest.approx(0.15)

    def test_multiple_probes_share_the_tick(self):
        registry = MetricsRegistry()
        sim = Simulator()
        sampler = DesSampler(registry, period_s=0.1)
        sampler.add_probe("a", lambda: 1.0)
        sampler.add_probe("b", lambda: 2.0)
        sampler.attach(sim, while_fn=lambda: False)
        sim.run()
        assert registry.gauge("a").series == [(0.0, 1.0)]
        assert registry.gauge("b").series == [(0.0, 2.0)]
