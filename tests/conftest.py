"""Shared fixtures for the test suite.

Keeps expensive artifacts (profiled configs, scenario problems) cached
at session scope so the suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.catalog import Block, Catalog, Path
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.task import QualityLevel, Task


@pytest.fixture(scope="session")
def quality() -> QualityLevel:
    return QualityLevel(name="full", bits_per_image=350_000.0)


def make_task(
    task_id: int,
    priority: float = 0.8,
    request_rate: float = 5.0,
    min_accuracy: float = 0.7,
    max_latency_s: float = 0.3,
    quality: QualityLevel | None = None,
) -> Task:
    return Task(
        task_id=task_id,
        name=f"task{task_id}",
        method="classification",
        priority=priority,
        request_rate=request_rate,
        min_accuracy=min_accuracy,
        max_latency_s=max_latency_s,
        qualities=(quality or QualityLevel(name="full", bits_per_image=350_000.0),),
    )


def make_block(
    block_id: str,
    dnn_id: str = "dnn0",
    compute_time_s: float = 0.005,
    memory_gb: float = 0.2,
    training_cost_s: float = 0.0,
) -> Block:
    return Block(
        block_id=block_id,
        dnn_id=dnn_id,
        compute_time_s=compute_time_s,
        memory_gb=memory_gb,
        training_cost_s=training_cost_s,
    )


def make_path(
    task: Task,
    path_id: str,
    blocks: tuple[Block, ...],
    accuracy: float = 0.9,
) -> Path:
    return Path(
        path_id=path_id,
        dnn_id=blocks[0].dnn_id,
        task_id=task.task_id,
        blocks=blocks,
        accuracy=accuracy,
        quality=task.qualities[0],
    )


@pytest.fixture()
def tiny_problem(quality: QualityLevel) -> DOTProblem:
    """Three tasks, two candidate paths each, one shared block."""
    shared = make_block("shared", compute_time_s=0.004, memory_gb=0.5)
    tasks = []
    catalog = Catalog()
    for i in range(3):
        task = make_task(i, priority=0.9 - 0.1 * i, min_accuracy=0.8, quality=quality)
        tasks.append(task)
        cheap = make_block(f"head{i}-cheap", compute_time_s=0.002, memory_gb=0.1,
                           training_cost_s=50.0)
        rich = make_block(f"head{i}-rich", compute_time_s=0.010, memory_gb=0.8,
                          training_cost_s=200.0)
        catalog.add_path(make_path(task, f"t{i}-cheap", (shared, cheap), accuracy=0.85))
        catalog.add_path(make_path(task, f"t{i}-rich", (shared, rich), accuracy=0.95))
    return DOTProblem(
        tasks=tuple(tasks),
        catalog=catalog,
        budgets=Budgets(
            compute_time_s=2.5, training_budget_s=1000.0, memory_gb=8.0, radio_blocks=50
        ),
        radio=RadioModel(default_bits_per_rb=350_000.0),
        alpha=0.5,
    )


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
