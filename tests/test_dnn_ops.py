"""Unit tests for the raw tensor operations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnn import ops


def naive_conv2d(x, w, stride, padding):
    """Straightforward reference convolution for cross-checking."""
    n, c_in, h, wdt = x.shape
    c_out, _, k, _ = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - k) // stride + 1
    out_w = (x.shape[3] - k) // stride + 1
    out = np.zeros((n, c_out, out_h, out_w), dtype=np.float64)
    for b in range(n):
        for o in range(c_out):
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[b, :, i * stride : i * stride + k, j * stride : j * stride + k]
                    out[b, o, i, j] = (patch * w[o]).sum()
    return out


class TestConvOutputSize:
    def test_identity_same_padding(self):
        assert ops.conv_output_size(32, 3, 1, 1) == 32

    def test_stride_two_halves(self):
        assert ops.conv_output_size(32, 3, 2, 1) == 16

    def test_no_padding_shrinks(self):
        assert ops.conv_output_size(32, 3, 1, 0) == 30

    def test_pointwise(self):
        assert ops.conv_output_size(7, 1, 1, 0) == 7


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive_reference(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        got = ops.conv2d(x, w, stride=stride, padding=padding)
        want = naive_conv2d(x, w, stride, padding)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_bias_added_per_channel(self):
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        w = np.zeros((2, 1, 1, 1), dtype=np.float32)
        bias = np.array([1.5, -2.0], dtype=np.float32)
        out = ops.conv2d(x, w, bias=bias)
        assert np.allclose(out[0, 0], 1.5)
        assert np.allclose(out[0, 1], -2.0)

    def test_channel_mismatch_raises(self):
        x = np.zeros((1, 3, 4, 4), dtype=np.float32)
        w = np.zeros((2, 4, 3, 3), dtype=np.float32)
        with pytest.raises(ValueError, match="channel mismatch"):
            ops.conv2d(x, w)

    def test_identity_kernel_preserves_input(self):
        x = np.random.default_rng(1).normal(size=(1, 1, 5, 5)).astype(np.float32)
        w = np.ones((1, 1, 1, 1), dtype=np.float32)
        np.testing.assert_allclose(ops.conv2d(x, w), x, rtol=1e-6)


class TestIm2col:
    def test_shapes(self):
        x = np.zeros((2, 3, 8, 8), dtype=np.float32)
        cols, oh, ow = ops.im2col(x, kernel=3, stride=1, padding=1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2, 3 * 9, 64)

    def test_content_single_window(self):
        x = np.arange(9, dtype=np.float32).reshape(1, 1, 3, 3)
        cols, oh, ow = ops.im2col(x, kernel=3, stride=1, padding=0)
        assert (oh, ow) == (1, 1)
        np.testing.assert_array_equal(cols[0, :, 0], np.arange(9))


class TestBatchNorm:
    def test_normalizes_to_affine(self):
        x = np.random.default_rng(2).normal(3.0, 2.0, size=(4, 2, 5, 5)).astype(np.float32)
        mean = x.mean(axis=(0, 2, 3))
        var = x.var(axis=(0, 2, 3))
        out = ops.batch_norm(
            x, np.ones(2, np.float32), np.zeros(2, np.float32), mean, var
        )
        assert abs(out.mean()) < 1e-2
        assert abs(out.std() - 1.0) < 1e-2

    def test_gamma_beta_applied(self):
        x = np.zeros((1, 1, 2, 2), dtype=np.float32)
        out = ops.batch_norm(
            x,
            gamma=np.array([2.0], np.float32),
            beta=np.array([5.0], np.float32),
            running_mean=np.array([0.0], np.float32),
            running_var=np.array([1.0], np.float32),
        )
        np.testing.assert_allclose(out, 5.0, atol=1e-5)


class TestPoolingAndLinear:
    def test_max_pool_picks_maxima(self):
        x = np.array([[[[1, 2], [3, 4]]]], dtype=np.float32)
        out = ops.max_pool2d(x, kernel=2, stride=2)
        assert out.shape == (1, 1, 1, 1)
        assert out[0, 0, 0, 0] == 4.0

    def test_global_avg_pool(self):
        x = np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2)
        out = ops.global_avg_pool(x)
        np.testing.assert_allclose(out, [[1.5, 5.5]])

    def test_linear_matches_matmul(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 6)).astype(np.float32)
        w = rng.normal(size=(3, 6)).astype(np.float32)
        b = rng.normal(size=3).astype(np.float32)
        np.testing.assert_allclose(ops.linear(x, w, b), x @ w.T + b, rtol=1e-5)


class TestSoftmaxCrossEntropy:
    def test_softmax_sums_to_one(self):
        x = np.random.default_rng(4).normal(size=(5, 7))
        probs = ops.softmax(x, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-6)

    def test_softmax_shift_invariant(self):
        x = np.random.default_rng(5).normal(size=(3, 4))
        np.testing.assert_allclose(
            ops.softmax(x), ops.softmax(x + 100.0), rtol=1e-5, atol=1e-7
        )

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        assert ops.cross_entropy(logits, labels) < 1e-6

    def test_cross_entropy_uniform_is_log_k(self):
        logits = np.zeros((2, 4))
        labels = np.array([0, 3])
        assert abs(ops.cross_entropy(logits, labels) - np.log(4)) < 1e-6

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_cross_entropy_nonnegative(self, n, k, seed):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(n, k))
        labels = rng.integers(0, k, size=n)
        assert ops.cross_entropy(logits, labels) >= 0.0

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_conv_linearity(self, seed):
        """conv(a x) = a conv(x) — convolution is linear."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        a = float(rng.uniform(0.5, 2.0))
        np.testing.assert_allclose(
            ops.conv2d(a * x, w, stride=1, padding=1),
            a * ops.conv2d(x, w, stride=1, padding=1),
            rtol=1e-3,
            atol=1e-4,
        )

    def test_conv2d_flops_formula(self):
        # 2 * Cin * Cout * K^2 * OH * OW
        assert ops.conv2d_flops(3, 8, 3, 4, 4) == 2 * 3 * 8 * 9 * 16


class TestRelu:
    def test_relu_clamps_negative(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(ops.relu(x), [0.0, 0.0, 2.0])
