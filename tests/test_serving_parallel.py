"""Parallel backend: weight arenas, process pool, micro-batching."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.dnn.configs import TABLE_I_CONFIGS
from repro.dnn.graph import Sequential
from repro.dnn.layers import Linear, ReLU
from repro.dnn.mobilenet import build_mobilenetv2
from repro.dnn.pruning import prune_resnet
from repro.dnn.resnet import build_resnet18
from repro.serving.executor import BlockwiseRunner
from repro.serving.parallel import (
    BLAS_THREAD_VARS,
    MicroBatcher,
    ParallelBackend,
    WeightArena,
    pin_blas_threads,
    shared_memory_available,
)

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory restricted on this platform",
)


def tiny_model(name: str = "CONFIG A", width: int = 8, input_size: int = 16):
    config = TABLE_I_CONFIGS[name]
    model = build_resnet18(num_classes=5, input_size=input_size, width=width, seed=0)
    if config.pruned:
        prune_resnet(model, set(config.prunable_blocks), config.prune_ratio)
    return model


@needs_shm
class TestWeightArena:
    def test_round_trip_and_dedup(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((4, 3)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        payload = {"w": w, "b": b, "w_again": w, "meta": {"n": 7}}
        arena = WeightArena.publish(payload)
        try:
            # shared tensor published once, not per reference
            assert len(arena.spec.slots) == 2
            attached, rebuilt = WeightArena.attach(arena.spec)
            try:
                np.testing.assert_array_equal(rebuilt["w"], w)
                np.testing.assert_array_equal(rebuilt["b"], b)
                assert rebuilt["meta"] == {"n": 7}
                # identity of the duplicate is preserved through the pickle
                assert rebuilt["w_again"] is rebuilt["w"]
                # views are zero-copy and read-only
                assert not rebuilt["w"].flags.writeable
                with pytest.raises(ValueError):
                    rebuilt["w"][0, 0] = 1.0
            finally:
                attached.close()
        finally:
            arena.close()
            arena.unlink()

    def test_slots_are_aligned(self):
        payload = [np.ones(3, dtype=np.float32), np.ones(5, dtype=np.float64)]
        arena = WeightArena.publish(payload)
        try:
            for offset, _shape, _dtype in arena.spec.slots:
                assert offset % 64 == 0
        finally:
            arena.close()
            arena.unlink()

    def test_object_arrays_rejected(self):
        with pytest.raises(TypeError):
            WeightArena.publish({"bad": np.array([object()], dtype=object)})

    def test_module_graph_survives(self):
        rng = np.random.default_rng(0)
        module = Sequential(Linear(6, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        arena = WeightArena.publish({"m": module})
        try:
            _, rebuilt = WeightArena.attach(arena.spec)
            x = np.random.default_rng(1).standard_normal((3, 6)).astype(np.float32)
            np.testing.assert_array_equal(rebuilt["m"](x), module(x))
        finally:
            arena.close()
            arena.unlink()


class TestSerialFallback:
    def test_num_procs_one_is_serial(self):
        backend = ParallelBackend.for_model(tiny_model(), num_procs=1)
        assert backend.mode == "serial"
        assert backend.fallback_reason == "num_procs=1"
        assert backend.procs == 1
        backend.close()

    def test_unimportable_main_falls_back(self, monkeypatch):
        import __main__

        monkeypatch.setattr(__main__, "__file__", "/nonexistent/<stdin>", raising=False)
        backend = ParallelBackend.for_model(tiny_model(), num_procs=2)
        assert backend.mode == "serial"
        assert backend.fallback_reason == "main module not importable by spawn"
        backend.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelBackend({}, num_procs=-1)
        with pytest.raises(ValueError):
            ParallelBackend({}, num_procs=1, min_shard=0)

    def test_unknown_block_rejected(self):
        backend = ParallelBackend.for_model(tiny_model(), num_procs=1)
        with pytest.raises(KeyError):
            backend.run_path(("nope",), np.zeros((1, 3, 16, 16), dtype=np.float32))
        backend.close()

    def test_closed_backend_rejects_work(self):
        backend = ParallelBackend.for_model(tiny_model(), num_procs=1)
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(RuntimeError):
            backend.run_model(np.zeros((1, 3, 16, 16), dtype=np.float32))


class TestSerialParity:
    @pytest.mark.parametrize("name", sorted(TABLE_I_CONFIGS))
    def test_table_i_configs_match_eager(self, name):
        model = tiny_model(name)
        x = np.random.default_rng(3).standard_normal(
            (4, *model.input_shape), dtype=np.float32
        )
        with ParallelBackend.for_model(model, num_procs=1) as backend:
            out = backend.run_model(x)
        assert np.abs(out - model.forward(x)).max() < 1e-4

    def test_mobilenet_matches_eager(self):
        model = build_mobilenetv2(
            num_classes=5, input_size=16, width_multiplier=0.25, seed=0
        )
        x = np.random.default_rng(4).standard_normal(
            (4, *model.input_shape), dtype=np.float32
        )
        with ParallelBackend.for_model(model, num_procs=1) as backend:
            out = backend.run_model(x)
        assert np.abs(out - model.forward(x)).max() < 1e-4

    def test_stats_accumulate(self):
        model = tiny_model()
        with ParallelBackend.for_model(model, num_procs=1) as backend:
            x = np.zeros((3, *model.input_shape), dtype=np.float32)
            backend.run_model(x)
            backend.run_block("stem", x)
            assert backend.calls == 2
            assert backend.samples == 6
            assert backend.sharded_calls == 0


@needs_shm
class TestProcessPool:
    @pytest.fixture(scope="class")
    def pooled(self):
        model = tiny_model()
        backend = ParallelBackend.for_model(model, num_procs=2, min_shard=2)
        yield model, backend
        backend.close()

    def test_parallel_matches_serial_exactly(self, pooled):
        model, backend = pooled
        if backend.mode != "parallel":  # pragma: no cover - platform specific
            pytest.skip(f"pool unavailable: {backend.fallback_reason}")
        x = np.random.default_rng(5).standard_normal(
            (8, *model.input_shape), dtype=np.float32
        )
        with ParallelBackend.for_model(model, num_procs=1) as serial:
            reference = serial.run_model(x)
        out = backend.run_model(x)
        assert backend.sharded_calls >= 1
        assert np.abs(out - reference).max() < 1e-6

    def test_small_batches_stay_in_parent(self, pooled):
        model, backend = pooled
        if backend.mode != "parallel":  # pragma: no cover - platform specific
            pytest.skip(f"pool unavailable: {backend.fallback_reason}")
        sharded_before = backend.sharded_calls
        x = np.zeros((2, *model.input_shape), dtype=np.float32)
        backend.run_model(x)  # 2 < 2 * min_shard: no worker round-trip
        assert backend.sharded_calls == sharded_before


class TestShardCount:
    def _serial(self):
        return ParallelBackend.for_model(tiny_model(), num_procs=1, min_shard=4)

    def test_serial_backend_never_shards(self):
        with self._serial() as backend:
            assert backend._shard_count(64) == 1

    def test_shard_rules(self):
        with self._serial() as backend:
            backend._pool = object()  # pretend a pool exists
            backend.procs = 4
            try:
                assert backend._shard_count(7) == 1  # below 2 * min_shard
                assert backend._shard_count(8) == 2
                assert backend._shard_count(16) == 4
                assert backend._shard_count(1024) == 4  # capped at procs
            finally:
                backend._pool = None


class TestPinBlasThreads:
    def test_sets_and_restores(self, monkeypatch):
        monkeypatch.setenv("OMP_NUM_THREADS", "7")
        monkeypatch.delenv("MKL_NUM_THREADS", raising=False)
        with pin_blas_threads(1):
            for var in BLAS_THREAD_VARS:
                assert os.environ[var] == "1"
        assert os.environ["OMP_NUM_THREADS"] == "7"
        assert "MKL_NUM_THREADS" not in os.environ


class FakeBackend:
    """Duck-typed stand-in recording run_path batches."""

    def __init__(self):
        self.batches: list[int] = []

    def run_path(self, block_ids, x):
        self.batches.append(x.shape[0])
        return x * 2.0


class FakeClock:
    def __init__(self, step: float = 0.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestMicroBatcher:
    def _batcher(self, **kwargs) -> tuple[MicroBatcher, FakeBackend]:
        backend = FakeBackend()
        kwargs.setdefault("clock", FakeClock())
        batcher = MicroBatcher(backend, ("stem",), **kwargs)
        return batcher, backend

    def test_full_batch_flushes(self):
        batcher, backend = self._batcher(max_batch=3)
        xs = [np.full((1, 2), float(i), dtype=np.float32) for i in range(3)]
        assert batcher.submit("r0", xs[0], deadline_at=10.0, now=0.0) is None
        assert batcher.submit("r1", xs[1], deadline_at=10.0, now=0.0) is None
        results = batcher.submit("r2", xs[2], deadline_at=10.0, now=0.0)
        assert backend.batches == [3]
        assert [rid for rid, _ in results] == ["r0", "r1", "r2"]
        for i, (_, out) in enumerate(results):
            np.testing.assert_array_equal(out, xs[i] * 2.0)
        assert batcher.reports[-1].trigger == "full"
        assert len(batcher) == 0

    def test_deadline_forces_flush(self):
        batcher, backend = self._batcher(max_batch=32)
        x = np.zeros((1, 2), dtype=np.float32)
        # est(1) + safety ≈ 8 ms: a deadline 5 ms out leaves no slack
        results = batcher.submit("r0", x, deadline_at=0.005, now=0.0)
        assert results is not None
        assert batcher.reports[-1].trigger == "deadline"
        assert backend.batches == [1]

    def test_poll_flushes_when_budget_expires(self):
        batcher, _ = self._batcher(max_batch=32)
        x = np.zeros((1, 2), dtype=np.float32)
        assert batcher.submit("r0", x, deadline_at=1.0, now=0.0) is None
        assert batcher.poll(now=0.5) is None
        results = batcher.poll(now=1.0)
        assert results is not None
        assert batcher.reports[-1].trigger == "deadline"

    def test_manual_flush_drains(self):
        batcher, _ = self._batcher()
        assert batcher.flush() is None
        batcher.submit("r0", np.zeros((1, 2), dtype=np.float32), 10.0, now=0.0)
        results = batcher.flush()
        assert [rid for rid, _ in results] == ["r0"]
        assert batcher.reports[-1].trigger == "manual"

    def test_unbatched_samples_accepted(self):
        batcher, backend = self._batcher(max_batch=2)
        batcher.submit("a", np.zeros((3, 8, 8), dtype=np.float32), 10.0, now=0.0)
        batcher.submit("b", np.zeros((1, 3, 8, 8), dtype=np.float32), 10.0, now=0.0)
        assert backend.batches == [2]

    def test_vector_samples_accepted(self):
        batcher, backend = self._batcher(max_batch=2)
        batcher.submit("a", np.zeros(4, dtype=np.float32), 10.0, now=0.0)
        batcher.submit("b", np.zeros(4, dtype=np.float32), 10.0, now=0.0)
        assert backend.batches == [2]

    def test_multi_sample_submit_rejected(self):
        batcher, _ = self._batcher()
        with pytest.raises(ValueError):
            batcher.submit("a", np.zeros((2, 4), dtype=np.float32), 10.0, now=0.0)

    def test_ewma_adapts_to_measured_time(self):
        clock = FakeClock(step=0.1)  # every flush observes 0.1 s of wall time
        batcher, _ = self._batcher(max_batch=1, clock=clock)
        before = batcher.per_sample_s
        batcher.submit("a", np.zeros((1, 2), dtype=np.float32), 100.0, now=0.0)
        observed = (0.1 - batcher.overhead_s) / 1
        expected = before + batcher.est_alpha * (observed - before)
        assert batcher.per_sample_s == pytest.approx(expected)
        assert batcher.estimate_s(2) == pytest.approx(
            batcher.overhead_s + 2 * batcher.per_sample_s
        )

    def test_next_flush_at_empty_is_inf(self):
        batcher, _ = self._batcher()
        assert batcher.next_flush_at() == float("inf")

    def test_validation(self):
        backend = FakeBackend()
        with pytest.raises(ValueError):
            MicroBatcher(backend, ("stem",), max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(backend, ("stem",), est_alpha=0.0)


class TestBlockwiseRunnerIntegration:
    def test_runner_routes_through_backend(self):
        from repro.core.catalog import Block, Path
        from repro.core.task import QualityLevel

        model = tiny_model()
        quality = QualityLevel(name="full", bits_per_image=1.0)
        blocks = tuple(
            Block(name, "base", compute_time_s=0.01, memory_gb=0.1)
            for name in model.blocks
        )
        path = Path("p", "base", 1, blocks, accuracy=0.9, quality=quality)
        x = np.random.default_rng(6).standard_normal(
            (2, *model.input_shape), dtype=np.float32
        )
        plain = BlockwiseRunner(modules=dict(model.blocks))
        with ParallelBackend.for_model(model, num_procs=1) as backend:
            routed = BlockwiseRunner(
                modules=dict(model.blocks),
                cacheable=frozenset(list(model.blocks)[:2]),
                parallel=backend,
            )
            out = routed.run(path, x, input_key=1)
            assert np.abs(out - plain.run(path, x, input_key=1)).max() < 1e-4
            before = backend.calls
            routed.run(path, x, input_key=1)  # prefix cache still works
            assert routed.cache_hits == 1
            # cached prefix blocks were not re-executed on the backend
            assert backend.calls - before == len(blocks) - 2
