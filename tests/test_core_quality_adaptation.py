"""Unit tests for quality-level (semantic compression) adaptation.

The formulation associates each task with quality levels ``q ∈ Q_τ``
that trade bits per image against attainable accuracy.  The tree
expands every path across the task's quality levels, so the solvers can
pick compressed inputs to save radio resources.
"""

from __future__ import annotations

import pytest

from repro.core.catalog import Catalog
from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import check_constraints
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.task import QualityLevel, Task
from repro.core.tree import build_tree
from tests.conftest import make_block, make_path


def _multi_quality_problem(min_accuracy: float, radio_blocks: int = 50) -> DOTProblem:
    q_low = QualityLevel("low", 100_000.0, accuracy_factor=0.9)
    q_high = QualityLevel("high", 350_000.0, accuracy_factor=1.0)
    task = Task(
        task_id=1, name="t", method="cls", priority=0.9, request_rate=5.0,
        min_accuracy=min_accuracy, max_latency_s=0.4, qualities=(q_low, q_high),
    )
    catalog = Catalog()
    catalog.add_path(make_path(task, "p", (make_block("b", compute_time_s=0.01),),
                               accuracy=0.9))
    return DOTProblem(
        tasks=(task,),
        catalog=catalog,
        budgets=Budgets(2.5, 1000.0, 8.0, radio_blocks),
        radio=RadioModel(default_bits_per_rb=350_000.0),
    )


class TestQualityExpansion:
    def test_tree_has_one_vertex_per_quality(self):
        problem = _multi_quality_problem(min_accuracy=0.5)
        tree = build_tree(problem)
        assert len(tree.cliques[0]) == 2
        names = {v.path.quality.name for v in tree.cliques[0].vertices}
        assert names == {"low", "high"}

    def test_accuracy_filter_prunes_compressed_variant(self):
        # 0.9 * 0.9 = 0.81 < 0.85, so the low quality is infeasible
        problem = _multi_quality_problem(min_accuracy=0.85)
        tree = build_tree(problem)
        assert len(tree.cliques[0]) == 1
        assert tree.cliques[0].vertices[0].path.quality.name == "high"

    def test_equal_compute_prefers_fewer_bits(self):
        """Both variants have the same compute time; the tie-break picks
        the compressed one, saving RBs (the semantic-compression win)."""
        problem = _multi_quality_problem(min_accuracy=0.5)
        solution = OffloaDNNSolver().solve(problem)
        assignment = solution.assignment(1)
        assert assignment.path.quality.name == "low"
        # 5 req/s x 100 kb at 0.35 Mbps -> 2 RBs instead of 5
        assert assignment.radio_blocks <= 2
        assert check_constraints(problem, solution).feasible

    def test_quality_variants_get_suffixed_ids(self):
        # the catalog path carries the low quality, so the expanded
        # high-quality variant is the renamed one
        problem = _multi_quality_problem(min_accuracy=0.5)
        tree = build_tree(problem)
        ids = sorted(v.path.path_id for v in tree.cliques[0].vertices)
        assert ids == ["p", "p@high"]

    def test_tight_radio_only_compressed_feasible(self):
        """With 1 RB, only the compressed variant can meet the rate
        constraint with a reasonable admission ratio."""
        problem = _multi_quality_problem(min_accuracy=0.5, radio_blocks=2)
        solution = OffloaDNNSolver().solve(problem)
        assignment = solution.assignment(1)
        assert assignment.admitted
        assert assignment.path.quality.name == "low"

    def test_single_quality_tasks_unchanged(self, tiny_problem):
        tree = build_tree(tiny_problem)
        for clique in tree.cliques:
            for vertex in clique.vertices:
                assert "@" not in vertex.path.path_id
