"""Unit tests for the emulation statistics extensions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emulator.metrics import TaskStatistics
from repro.emulator.nodes import EdgeServer, FrameRecord
from repro.emulator.scenario import run_small_scale_emulation
from repro.emulator.simulator import Simulator


class TestTaskStatistics:
    def _records(self):
        return [
            FrameRecord(task_id=1, frame_id=0, created_at=0.0,
                        uplink_done_at=0.2, compute_done_at=0.25, completed_at=0.25),
            FrameRecord(task_id=1, frame_id=1, created_at=1.0,
                        uplink_done_at=1.2, compute_done_at=1.3, completed_at=1.3),
        ]

    def test_decomposition(self):
        stats = TaskStatistics.from_records(1, self._records(), duration_s=2.0,
                                            deadline_s=0.5)
        assert stats.frames == 2
        assert stats.mean_uplink_s == pytest.approx(0.2)
        assert stats.mean_compute_s == pytest.approx(0.075)
        assert stats.mean_latency_s == pytest.approx((0.25 + 0.3) / 2)
        assert stats.goodput_fps == pytest.approx(1.0)

    def test_deadline_misses(self):
        stats = TaskStatistics.from_records(1, self._records(), duration_s=2.0,
                                            deadline_s=0.27)
        assert stats.deadline_miss_fraction == pytest.approx(0.5)

    def test_empty_records(self):
        stats = TaskStatistics.from_records(1, [], duration_s=2.0, deadline_s=0.5)
        assert stats.frames == 0
        assert np.isnan(stats.mean_latency_s)
        assert stats.goodput_fps == 0.0

    def test_p95_at_least_mean(self):
        stats = TaskStatistics.from_records(1, self._records(), duration_s=2.0,
                                            deadline_s=0.5)
        assert stats.p95_latency_s >= stats.mean_latency_s


class TestServerUtilization:
    def test_busy_time_accumulates(self):
        from repro.core.task import QualityLevel
        from tests.conftest import make_block, make_path, make_task

        sim = Simulator()
        server = EdgeServer(simulator=sim, compute_jitter=0.0, result_return_s=0.0)
        task = make_task(1, quality=QualityLevel("q", 1000.0))
        path = make_path(task, "p", (make_block("b", compute_time_s=0.1),))
        for i in range(3):
            server.submit(FrameRecord(task_id=1, frame_id=i, created_at=0.0), path)
        sim.run()
        assert server.busy_time_s == pytest.approx(0.3)
        assert server.utilization(1.0) == pytest.approx(0.3)

    def test_utilization_capped_at_one(self):
        sim = Simulator()
        server = EdgeServer(simulator=sim)
        server.busy.add(0.0, 10.0)
        assert server.utilization(5.0) == 1.0

    def test_utilization_clamps_service_past_horizon(self):
        """Regression: a service tail past the run horizon used to push
        utilization above 1.0; busy time is now clamped to the window."""
        from repro.core.task import QualityLevel
        from tests.conftest import make_block, make_path, make_task

        sim = Simulator()
        server = EdgeServer(simulator=sim, compute_jitter=0.0, result_return_s=0.0)
        task = make_task(1, quality=QualityLevel("q", 1000.0))
        path = make_path(task, "p", (make_block("b", compute_time_s=2.0),))
        for i in range(3):  # 6 s of service submitted at t=0
            server.submit(FrameRecord(task_id=1, frame_id=i, created_at=0.0), path)
        sim.run()
        assert server.busy_time_s == pytest.approx(6.0)
        # a 1 s horizon sees exactly 1 s of busy GPU, not 6 s
        assert server.utilization(1.0) == pytest.approx(1.0)
        assert server.busy.within(1.0) == pytest.approx(1.0)
        assert server.utilization(8.0) == pytest.approx(0.75)

    def test_busy_tracker_windows_and_gaps(self):
        from repro.emulator.nodes import BusyTracker

        tracker = BusyTracker()
        tracker.add(0.0, 1.0)
        tracker.add(1.0, 2.0)  # contiguous: coalesces
        tracker.add(5.0, 7.0)
        assert len(tracker.periods) == 2
        assert tracker.total_s == pytest.approx(4.0)
        assert tracker.within(0.5) == pytest.approx(0.5)
        assert tracker.within(3.0) == pytest.approx(2.0)
        assert tracker.within(6.0) == pytest.approx(3.0)
        assert tracker.within(100.0) == pytest.approx(4.0)

    def test_invalid_duration(self):
        server = EdgeServer(simulator=Simulator())
        with pytest.raises(ValueError):
            server.utilization(0.0)


class TestEmulationStatistics:
    def test_full_run_statistics(self):
        problem, result = run_small_scale_emulation(num_tasks=3, duration_s=8.0)
        stats = result.statistics(problem)
        assert set(stats) == {1, 2, 3}
        for task in problem.tasks:
            entry = stats[task.task_id]
            assert entry.frames > 30  # ~5 req/s for 8 s
            assert entry.deadline_miss_fraction == 0.0
            # transmission dominates in this scenario
            assert entry.mean_uplink_s > entry.mean_compute_s
            assert entry.goodput_fps == pytest.approx(5.0, rel=0.15)
        assert 0.0 < result.gpu_utilization < 0.5
