"""Unit tests for the fine-tuning simulator (Fig. 2 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.configs import TABLE_I_CONFIGS, get_config
from repro.dnn.datasets import make_feature_dataset
from repro.dnn.resnet import build_resnet18
from repro.dnn.training import (
    AdamState,
    HeadTrainer,
    LearningCurveModel,
    TrainingMemoryModel,
    cosine_annealing_lr,
    pruned_accuracy_drop,
    simulate_fine_tuning,
    training_cost_seconds,
)


@pytest.fixture(scope="module")
def model():
    return build_resnet18(num_classes=20, input_size=16, width=8)


class TestAdam:
    def test_step_moves_against_gradient(self):
        param = np.array([1.0])
        state = AdamState.like(param)
        new = state.step(param, np.array([1.0]), lr=0.1)
        assert new[0] < param[0]

    def test_weight_decay_shrinks_params(self):
        param = np.array([10.0])
        state = AdamState.like(param)
        new = state.step(param, np.array([0.0]), lr=0.1, weight_decay=1.0)
        assert new[0] < param[0]


class TestCosineAnnealing:
    def test_starts_at_base_lr(self):
        assert cosine_annealing_lr(0.2, 0, 100) == pytest.approx(0.2)

    def test_ends_at_min_lr(self):
        assert cosine_annealing_lr(0.2, 100, 100) == pytest.approx(0.0, abs=1e-9)

    def test_monotone_decay(self):
        values = [cosine_annealing_lr(0.2, e, 100) for e in range(0, 101, 10)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_invalid_total_raises(self):
        with pytest.raises(ValueError):
            cosine_annealing_lr(0.2, 1, 0)


class TestHeadTrainer:
    def test_learns_separable_classes(self):
        data = make_feature_dataset(num_classes=5, samples_per_class=60,
                                    feature_dim=16, separability=4.0, seed=0)
        train, test = data.split(0.8, seed=1)
        trainer = HeadTrainer(feature_dim=16, num_classes=5, lr=0.05, seed=0)
        run = trainer.fit(train, test, epochs=15)
        assert run.test_accuracy[-1] > 0.9
        assert run.train_loss[0] > run.train_loss[-1]

    def test_harder_data_learns_worse(self):
        easy = make_feature_dataset(num_classes=5, samples_per_class=40,
                                    feature_dim=16, separability=4.0, seed=0)
        hard = make_feature_dataset(num_classes=5, samples_per_class=40,
                                    feature_dim=16, separability=0.5, seed=0)
        results = {}
        for name, data in (("easy", easy), ("hard", hard)):
            train, test = data.split(0.8, seed=1)
            trainer = HeadTrainer(feature_dim=16, num_classes=5, lr=0.05, seed=0)
            run = trainer.fit(train, test, epochs=10)
            results[name] = run.best_test_accuracy
        assert results["easy"] > results["hard"]

    def test_invalid_epochs(self):
        trainer = HeadTrainer(feature_dim=4, num_classes=2)
        data = make_feature_dataset(num_classes=2, samples_per_class=5, feature_dim=4)
        with pytest.raises(ValueError):
            trainer.fit(data, data, epochs=0)


class TestLearningCurveModel:
    def test_config_a_slowest_to_80pct(self):
        """CONFIG A takes >200 epochs to reach 80%; B and C converge fast
        (the Fig. 2-left orderings)."""
        epochs = {
            name: LearningCurveModel.for_config(get_config(name)).epochs_to_reach(0.8)
            for name in ("CONFIG A", "CONFIG B", "CONFIG C", "CONFIG D", "CONFIG E")
        }
        assert epochs["CONFIG A"] > 200
        assert epochs["CONFIG B"] < epochs["CONFIG C"] < epochs["CONFIG D"] < epochs["CONFIG E"]

    def test_config_a_highest_final_accuracy(self):
        """With enough epochs CONFIG A beats every shared configuration."""
        final = {
            name: LearningCurveModel.for_config(get_config(name)).accuracy_at(500)
            for name in ("CONFIG A", "CONFIG B", "CONFIG C", "CONFIG D", "CONFIG E")
        }
        assert final["CONFIG A"] == max(final.values())

    def test_config_a_beats_overfit_configs_at_300(self):
        """The paper's statement: after >250 epochs A achieves better
        accuracy than the overfitting shared configurations B and C."""
        acc = {
            name: LearningCurveModel.for_config(get_config(name)).accuracy_at(300)
            for name in ("CONFIG A", "CONFIG B", "CONFIG C")
        }
        assert acc["CONFIG A"] > acc["CONFIG B"]
        assert acc["CONFIG A"] > acc["CONFIG C"]

    def test_b_and_c_overfit(self):
        """B and C peak then decay with long training (overfitting)."""
        for name in ("CONFIG B", "CONFIG C"):
            curve = LearningCurveModel.for_config(get_config(name))
            peak_epoch = curve.overfit_epoch
            assert peak_epoch is not None
            assert curve.accuracy_at(400) < curve.accuracy_at(peak_epoch)

    def test_d_and_e_do_not_overfit(self):
        for name in ("CONFIG D", "CONFIG E"):
            curve = LearningCurveModel.for_config(get_config(name))
            assert curve.overfit_epoch is None

    def test_curve_monotone_before_overfit(self):
        curve = LearningCurveModel.for_config(get_config("CONFIG C"))
        values = [curve.accuracy_at(e) for e in range(0, curve.overfit_epoch, 10)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_curve_bounded(self):
        curve = LearningCurveModel.for_config(get_config("CONFIG A"))
        values = curve.curve(300, seed=0)
        assert (values >= 0).all() and (values <= 1).all()

    def test_curve_noise_reproducible(self):
        curve = LearningCurveModel.for_config(get_config("CONFIG D"))
        np.testing.assert_array_equal(curve.curve(50, seed=3), curve.curve(50, seed=3))

    def test_negative_epoch_raises(self):
        curve = LearningCurveModel.for_config(get_config("CONFIG A"))
        with pytest.raises(ValueError):
            curve.accuracy_at(-1)


class TestTrainingMemoryModel:
    def test_config_a_uses_most_memory(self, model):
        mem = TrainingMemoryModel(batch_size=256)
        peaks = {
            name: mem.peak_mib(model, get_config(name))
            for name in ("CONFIG A", "CONFIG B", "CONFIG C", "CONFIG D", "CONFIG E")
        }
        assert peaks["CONFIG A"] == max(peaks.values())
        assert peaks["CONFIG B"] == min(peaks.values())

    def test_memory_ordering_by_shared_depth(self, model):
        """More shared (frozen) blocks -> less training memory."""
        mem = TrainingMemoryModel(batch_size=256)
        b = mem.peak_mib(model, get_config("CONFIG B"))
        c = mem.peak_mib(model, get_config("CONFIG C"))
        d = mem.peak_mib(model, get_config("CONFIG D"))
        e = mem.peak_mib(model, get_config("CONFIG E"))
        assert b < c < d < e

    def test_batch_size_scales_activation_term(self, model):
        small = TrainingMemoryModel(batch_size=32, framework_overhead_bytes=0)
        large = TrainingMemoryModel(batch_size=256, framework_overhead_bytes=0)
        config = get_config("CONFIG A")
        assert large.peak_bytes(model, config) > small.peak_bytes(model, config)


class TestTrainingCost:
    def test_scales_with_epochs(self, model):
        config = get_config("CONFIG C")
        assert training_cost_seconds(model, config, 100) == pytest.approx(
            2 * training_cost_seconds(model, config, 50)
        )

    def test_zero_epochs_zero_cost(self, model):
        assert training_cost_seconds(model, get_config("CONFIG A"), 0) == 0.0

    def test_fully_trainable_costs_most(self, model):
        costs = {
            name: training_cost_seconds(model, get_config(name), 100)
            for name in ("CONFIG A", "CONFIG B", "CONFIG C")
        }
        assert costs["CONFIG A"] > costs["CONFIG C"] > costs["CONFIG B"]

    def test_negative_epochs_raise(self, model):
        with pytest.raises(ValueError):
            training_cost_seconds(model, get_config("CONFIG A"), -1)


class TestPrunedAccuracyDrop:
    def test_unpruned_config_no_drop(self, model):
        assert pruned_accuracy_drop(get_config("CONFIG C"), model) == 0.0

    def test_config_b_pruned_smallest_drop(self, model):
        """B-pruned inherits most blocks -> least accuracy lost
        (the Fig. 3-right effect)."""
        drops = {
            name: pruned_accuracy_drop(TABLE_I_CONFIGS[name], model)
            for name in TABLE_I_CONFIGS
            if name.endswith("-pruned")
        }
        assert drops["CONFIG B-pruned"] == min(drops.values())
        assert drops["CONFIG A-pruned"] == max(drops.values())


class TestSimulateFineTuning:
    def test_outcome_fields(self, model):
        outcome = simulate_fine_tuning(model, get_config("CONFIG C"), epochs=50)
        assert outcome.config_name == "CONFIG C"
        assert len(outcome.accuracy_curve) == 50
        assert outcome.peak_memory_mib > 0
        assert outcome.training_cost_s > 0

    def test_pruned_outcome_less_accurate(self, model):
        plain = simulate_fine_tuning(model, get_config("CONFIG C"), epochs=100)
        pruned = simulate_fine_tuning(model, get_config("CONFIG C-pruned"), epochs=100)
        assert pruned.final_accuracy < plain.final_accuracy
