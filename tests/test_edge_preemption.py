"""Tests for priority preemption at the controller."""

from __future__ import annotations

import pytest

from repro.core.problem import RadioModel
from repro.core.task import QualityLevel, Task
from repro.edge.controller import OffloaDNNController
from repro.edge.resources import Gpu
from repro.edge.vim import VirtualInfrastructureManager
from repro.radio.slicing import SliceManager
from repro.workloads.generator import ScenarioCatalogBuilder


def _task(task_id: int, priority: float) -> Task:
    return Task(
        task_id=task_id,
        name=f"t{task_id}",
        method="classification",
        priority=priority,
        request_rate=5.0,
        min_accuracy=0.7,
        max_latency_s=0.4,
        qualities=(QualityLevel("full", 350_000.0),),
    )


def _controller(radio_blocks: int = 12) -> OffloaDNNController:
    # a 12-RB pool fits two 5-RB tasks but not three
    return OffloaDNNController(
        vim=VirtualInfrastructureManager(gpus=(Gpu(0, vram_gb=8.0, compute_share=2.5),)),
        slice_manager=SliceManager(capacity_rbs=radio_blocks),
        radio=RadioModel(default_bits_per_rb=350_000.0),
    )


def _admit(controller: OffloaDNNController, task: Task):
    catalog = ScenarioCatalogBuilder(seed=0).build((task,), task.qualities[0])
    return controller.handle_admission_requests((task,), catalog)[task.task_id]


def _admit_preempting(
    controller: OffloaDNNController, task: Task, min_ratio: float = 1e-9
):
    catalog = ScenarioCatalogBuilder(seed=0).build((task,), task.qualities[0])
    return controller.admit_with_preemption(task, catalog, min_ratio)


class TestPreemption:
    def test_high_priority_evicts_lowest(self):
        controller = _controller()
        assert _admit(controller, _task(1, 0.3)).admitted
        assert _admit(controller, _task(2, 0.5)).admitted
        # pool full: plain admission of a third task fails
        assert not _admit(controller, _task(3, 0.9)).admitted
        ticket, evicted = _admit_preempting(controller, _task(3, 0.9))
        assert ticket.admitted
        assert evicted == [1]  # lowest priority went first
        assert set(controller.active_tasks) == {2, 3}

    def test_low_priority_cannot_preempt(self):
        controller = _controller()
        _admit(controller, _task(1, 0.8))
        _admit(controller, _task(2, 0.9))
        ticket, evicted = _admit_preempting(controller, _task(3, 0.1))
        assert not ticket.admitted
        assert evicted == []
        assert set(controller.active_tasks) == {1, 2}

    def test_no_preemption_when_capacity_suffices(self):
        controller = _controller(radio_blocks=50)
        _admit(controller, _task(1, 0.3))
        ticket, evicted = _admit_preempting(controller, _task(2, 0.9))
        assert ticket.admitted
        assert evicted == []
        assert set(controller.active_tasks) == {1, 2}

    def test_partial_admission_after_one_eviction(self):
        # newcomer needs ~10 RBs; one 5-RB victim leaves 7 free -> the
        # default contract stops at the partial grant (z = 0.7)
        controller = _controller(radio_blocks=12)
        _admit(controller, _task(1, 0.2))
        _admit(controller, _task(2, 0.3))
        big = Task(
            task_id=3, name="big", method="classification", priority=0.9,
            request_rate=10.0, min_accuracy=0.7, max_latency_s=0.4,
            qualities=(QualityLevel("full", 350_000.0),),
        )
        ticket, evicted = _admit_preempting(controller, big)
        assert ticket.admitted
        assert 0.0 < ticket.admission_ratio < 1.0
        assert evicted == [1]

    def test_full_rate_demand_evicts_more(self):
        # demanding z = 1 forces both lower-priority victims out
        controller = _controller(radio_blocks=12)
        _admit(controller, _task(1, 0.2))
        _admit(controller, _task(2, 0.3))
        big = Task(
            task_id=3, name="big", method="classification", priority=0.9,
            request_rate=10.0, min_accuracy=0.7, max_latency_s=0.4,
            qualities=(QualityLevel("full", 350_000.0),),
        )
        ticket, evicted = _admit_preempting(controller, big, min_ratio=1.0)
        assert ticket.admitted
        assert ticket.admission_ratio == pytest.approx(1.0)
        assert evicted == [1, 2]

    def test_invalid_min_ratio(self):
        controller = _controller()
        task = _task(1, 0.5)
        catalog = ScenarioCatalogBuilder(seed=0).build((task,), task.qualities[0])
        with pytest.raises(ValueError):
            controller.admit_with_preemption(task, catalog, min_admission_ratio=0.0)

    def test_eviction_frees_blocks_and_slices(self):
        controller = _controller()
        _admit(controller, _task(1, 0.3))
        _admit(controller, _task(2, 0.5))
        memory_full = controller.vim.deployed_memory_gb()
        _admit_preempting(controller, _task(3, 0.9))
        assert 1 not in controller.slice_manager.slices
        # victim-only blocks unloaded; total deployments stay bounded
        assert controller.vim.deployed_memory_gb() <= memory_full + 0.5

    def test_active_tasks_tracked(self):
        controller = _controller(radio_blocks=50)
        _admit(controller, _task(1, 0.4))
        assert 1 in controller.active_tasks
        controller.evict_task(1)
        assert 1 not in controller.active_tasks
