"""Unit tests for the terminal plotting utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.plots import bar_chart, line_plot, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_marks(self):
        marks = sparkline([0.0, 0.5, 1.0])
        assert marks[0] <= marks[1] <= marks[2]

    def test_empty(self):
        assert sparkline([]) == ""

    def test_scaled_to_maximum(self):
        half = sparkline([0.5], maximum=1.0)
        full = sparkline([1.0], maximum=1.0)
        assert half < full

    def test_zero_max(self):
        assert sparkline([0.0, 0.0]) == "▁▁"


class TestBarChart:
    def test_rows_per_label(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0])
        assert len(text.splitlines()) == 2
        assert "bb" in text

    def test_longest_bar_for_max(self):
        lines = bar_chart(["a", "b"], [1.0, 4.0], width=8).splitlines()
        assert lines[1].count("█") == 8
        assert lines[0].count("█") == 2

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == ""


class TestLinePlot:
    def test_contains_markers_and_legend(self):
        text = line_plot([1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]})
        assert "o=up" in text
        assert "x=down" in text
        assert "o" in text and "x" in text

    def test_logy_header(self):
        text = line_plot([1, 2], {"s": [0.001, 100.0]}, logy=True)
        assert text.startswith("log10(y)")

    def test_constant_series_handled(self):
        text = line_plot([1, 2], {"c": [5.0, 5.0]})
        assert "c" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            line_plot([1, 2], {"s": [1.0]})

    def test_empty_series(self):
        assert line_plot([1], {}) == ""
