"""Property-based invariants on randomly generated DOT problems.

Hypothesis generates random problem instances (tasks, catalogs with a
mix of shared and dedicated blocks, budgets) and checks the solver
contracts that must hold universally:

* every solver output satisfies constraints (1b)-(1g);
* the optimum's objective never exceeds the heuristic's;
* block sharing can only reduce total memory vs dedicated deployment;
* admission ratios are monotone non-increasing in scarcity.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.semoran import SemORANSolver
from repro.core.catalog import Block, Catalog, Path
from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import check_constraints, objective_value
from repro.core.optimal import OptimalSolver
from repro.core.problem import Budgets, DOTProblem, RadioModel
from repro.core.task import QualityLevel, Task


@st.composite
def dot_problems(draw) -> DOTProblem:
    seed = draw(st.integers(min_value=0, max_value=100_000))
    num_tasks = draw(st.integers(min_value=1, max_value=4))
    paths_per_task = draw(st.integers(min_value=1, max_value=3))
    rng = np.random.default_rng(seed)
    quality = QualityLevel("q", bits_per_image=float(rng.uniform(5e4, 5e5)))

    tasks = tuple(
        Task(
            task_id=i,
            name=f"t{i}",
            method="cls",
            priority=float(rng.uniform(0.05, 1.0)),
            request_rate=float(rng.uniform(0.5, 10.0)),
            min_accuracy=float(rng.uniform(0.3, 0.9)),
            max_latency_s=float(rng.uniform(0.05, 1.0)),
            qualities=(quality,),
        )
        for i in range(num_tasks)
    )
    shared = Block(
        block_id="shared",
        dnn_id="base",
        compute_time_s=float(rng.uniform(0.001, 0.02)),
        memory_gb=float(rng.uniform(0.1, 1.0)),
        training_cost_s=0.0,
    )
    catalog = Catalog()
    for task in tasks:
        for j in range(paths_per_task):
            own = Block(
                block_id=f"own-{task.task_id}-{j}",
                dnn_id=f"dnn-{task.task_id}-{j}",
                compute_time_s=float(rng.uniform(0.001, 0.05)),
                memory_gb=float(rng.uniform(0.05, 2.0)),
                training_cost_s=float(rng.uniform(0.0, 100.0)),
            )
            blocks = (shared, own) if rng.uniform() < 0.5 else (own,)
            catalog.add_path(
                Path(
                    path_id=f"p-{task.task_id}-{j}",
                    dnn_id=own.dnn_id,
                    task_id=task.task_id,
                    blocks=blocks,
                    accuracy=float(rng.uniform(0.4, 1.0)),
                    quality=quality,
                )
            )
    budgets = Budgets(
        compute_time_s=float(rng.uniform(0.5, 5.0)),
        training_budget_s=1000.0,
        memory_gb=float(rng.uniform(1.0, 10.0)),
        radio_blocks=int(rng.integers(5, 100)),
    )
    return DOTProblem(
        tasks=tasks,
        catalog=catalog,
        budgets=budgets,
        radio=RadioModel(default_bits_per_rb=float(rng.uniform(1e5, 1e6))),
        alpha=float(rng.uniform(0.0, 1.0)),
    )


@given(dot_problems())
@settings(max_examples=40, deadline=None)
def test_heuristic_always_feasible(problem):
    solution = OffloaDNNSolver().solve(problem)
    report = check_constraints(problem, solution)
    assert report.feasible, report.violations


@given(dot_problems())
@settings(max_examples=25, deadline=None)
def test_optimal_always_feasible_and_no_worse(problem):
    heuristic = OffloaDNNSolver().solve(problem)
    optimal = OptimalSolver().solve(problem)
    assert check_constraints(problem, optimal).feasible
    assert objective_value(problem, optimal) <= objective_value(problem, heuristic) + 1e-9


@given(dot_problems())
@settings(max_examples=25, deadline=None)
def test_semoran_always_feasible(problem):
    solution = SemORANSolver().solve(problem)
    report = check_constraints(problem, solution)
    assert report.feasible, report.violations


@given(dot_problems())
@settings(max_examples=25, deadline=None)
def test_shared_memory_never_exceeds_dedicated_sum(problem):
    """Counting shared blocks once is never worse than per-task copies."""
    solution = OffloaDNNSolver().solve(problem)
    dedicated = sum(
        sum(b.memory_gb for b in a.path.blocks)
        for a in solution.admitted_assignments()
    )
    assert solution.total_memory_gb <= dedicated + 1e-9


@given(dot_problems())
@settings(max_examples=20, deadline=None)
def test_admission_monotone_in_radio_budget(problem):
    """Doubling the radio pool never decreases weighted admission."""
    from dataclasses import replace

    solution = OffloaDNNSolver().solve(problem)
    bigger = DOTProblem(
        tasks=problem.tasks,
        catalog=problem.catalog,
        budgets=replace(problem.budgets, radio_blocks=problem.budgets.radio_blocks * 2),
        radio=problem.radio,
        alpha=problem.alpha,
    )
    bigger_solution = OffloaDNNSolver().solve(bigger)
    assert (
        bigger_solution.weighted_admission_ratio
        >= solution.weighted_admission_ratio - 1e-9
    )


@given(dot_problems())
@settings(max_examples=25, deadline=None)
def test_rejected_tasks_consume_nothing(problem):
    solution = OffloaDNNSolver().solve(problem)
    for assignment in solution.assignments.values():
        if not assignment.admitted:
            assert assignment.radio_blocks == 0
            assert assignment.admitted_rate == 0.0


@given(dot_problems())
@settings(max_examples=25, deadline=None)
def test_admitted_paths_meet_accuracy(problem):
    solution = OffloaDNNSolver().solve(problem)
    for assignment in solution.admitted_assignments():
        assert (
            assignment.path.effective_accuracy
            >= assignment.task.min_accuracy - 1e-9
        )
