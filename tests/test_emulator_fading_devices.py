"""Tests for channel fading and multi-device tasks in the emulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emulator.lte import BlockFading, LteCell
from repro.emulator.scenario import EmulationScenario
from repro.radio.slicing import SliceManager
from repro.workloads.smallscale import small_scale_problem


class TestBlockFading:
    def test_factor_in_unit_interval(self):
        fading = BlockFading(sigma_db=3.0, seed=0)
        for t in np.linspace(0, 10, 37):
            factor = fading.factor(task_id=1, now=float(t))
            assert 0.0 < factor <= 1.0

    def test_constant_within_coherence_block(self):
        fading = BlockFading(coherence_time_s=1.0, sigma_db=3.0, seed=0)
        assert fading.factor(1, 0.1) == fading.factor(1, 0.9)

    def test_changes_across_blocks(self):
        fading = BlockFading(coherence_time_s=0.5, sigma_db=3.0, seed=0)
        factors = {fading.factor(1, 0.5 * b + 0.1) for b in range(20)}
        assert len(factors) > 5

    def test_independent_across_tasks(self):
        fading = BlockFading(coherence_time_s=0.5, sigma_db=3.0, seed=0)
        a = [fading.factor(1, t) for t in np.arange(0, 5, 0.5)]
        b = [fading.factor(2, t) for t in np.arange(0, 5, 0.5)]
        assert a != b

    def test_deterministic_given_seed(self):
        a = BlockFading(sigma_db=2.0, seed=7)
        b = BlockFading(sigma_db=2.0, seed=7)
        assert a.factor(3, 1.23) == b.factor(3, 1.23)

    def test_zero_sigma_is_unity(self):
        fading = BlockFading(sigma_db=0.0)
        assert fading.factor(1, 0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockFading(coherence_time_s=0.0)
        with pytest.raises(ValueError):
            BlockFading(sigma_db=-1.0)


class TestFadedCell:
    def test_fading_extends_transmissions(self):
        mgr = SliceManager(capacity_rbs=100)
        mgr.allocate(1, 5, 350_000.0)
        clean = LteCell(slice_manager=mgr)
        faded = LteCell(slice_manager=mgr, fading=BlockFading(sigma_db=3.0, seed=1))
        base = clean.transmission_duration(1, 350_000.0)
        worst = max(
            faded.transmission_duration(1, 350_000.0, now=t)
            for t in np.arange(0, 10, 0.5)
        )
        assert worst > base


class TestMultiDeviceScenario:
    def test_devices_split_the_rate(self):
        problem = small_scale_problem(2, seed=0)
        single = EmulationScenario(problem=problem, duration_s=6.0, seed=0).run()
        multi = EmulationScenario(
            problem=problem, duration_s=6.0, devices_per_task=3, seed=0
        ).run()
        # the aggregate frame count per task is preserved (within the
        # edge effects of start offsets)
        for task in problem.tasks:
            n_single = len(single.timeline.records_by_task.get(task.task_id, []))
            n_multi = len(multi.timeline.records_by_task.get(task.task_id, []))
            assert n_multi == pytest.approx(n_single, abs=4)

    def test_latency_targets_hold_with_multiple_devices(self):
        problem = small_scale_problem(3, seed=0)
        result = EmulationScenario(
            problem=problem, duration_s=8.0, devices_per_task=2, seed=0
        ).run()
        assert result.all_within_limits(problem)

    def test_invalid_device_count(self):
        problem = small_scale_problem(1, seed=0)
        scenario = EmulationScenario(problem=problem, devices_per_task=0)
        with pytest.raises(ValueError):
            scenario.run()

    def test_fading_tolerated_with_slice_margin(self):
        """The solver's ``slice_margin_rbs`` option over-provisions each
        slice; with that headroom, mild fading adds jitter but every
        task stays within its target."""
        from repro.core.heuristic import OffloaDNNSolver

        problem = small_scale_problem(3, seed=0)
        result = EmulationScenario(
            problem=problem,
            duration_s=10.0,
            fading=BlockFading(sigma_db=0.4, seed=2),
            seed=0,
        ).run(solver=OffloaDNNSolver(slice_margin_rbs=2))
        for task in problem.tasks:
            fraction = result.timeline.violation_fraction(
                task.task_id, task.max_latency_s
            )
            assert fraction < 0.25, (task.task_id, fraction)

    def test_rate_matched_slices_unstable_under_fading(self):
        """The instructive failure mode: OffloaDNN sizes slices to the
        *nominal* per-RB rate, so a slice running at 100% utilization
        (r = ceil(λβ/B)) becomes an unstable queue under any sustained
        throughput loss — latencies drift far beyond the no-fading
        level.  (The paper's Colosseum setup used a static 0 dB path
        loss, i.e. no fading, which is why Fig. 11 stays flat.)"""
        problem = small_scale_problem(3, seed=0)
        clean = EmulationScenario(problem=problem, duration_s=10.0, seed=0).run()
        faded = EmulationScenario(
            problem=problem,
            duration_s=10.0,
            fading=BlockFading(sigma_db=0.4, seed=2),
            seed=0,
        ).run()
        # task 2's slice is rate matched (5 RBs for 5 req/s x 350 kb):
        # fading must inflate its latency well beyond the clean run
        assert faded.timeline.mean_latency(2) > 1.5 * clean.timeline.mean_latency(2)
