"""Round-trip tests for the JSON serialization of problems/solutions."""

from __future__ import annotations

import pytest

from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import objective_value
from repro.core.serialize import (
    FORMAT_VERSION,
    dump_problem,
    dump_solution,
    load_problem,
    load_solution,
    problem_from_dict,
    problem_to_dict,
    solution_from_dict,
    solution_to_dict,
)
from repro.workloads.smallscale import small_scale_problem


class TestProblemRoundTrip:
    def test_round_trip_preserves_structure(self, tiny_problem):
        data = problem_to_dict(tiny_problem)
        restored = problem_from_dict(data)
        assert len(restored.tasks) == len(tiny_problem.tasks)
        assert restored.budgets == tiny_problem.budgets
        assert restored.alpha == tiny_problem.alpha
        for task in tiny_problem.tasks:
            original = tiny_problem.catalog.paths_for(task)
            loaded = restored.catalog.paths_for(task)
            assert [p.path_id for p in loaded] == [p.path_id for p in original]
            assert [p.accuracy for p in loaded] == [p.accuracy for p in original]

    def test_shared_blocks_stay_shared(self, tiny_problem):
        restored = problem_from_dict(problem_to_dict(tiny_problem))
        blocks = restored.catalog.all_blocks()
        assert "shared" in blocks
        # block objects are shared instances across paths after decode
        paths = restored.catalog.paths_for(0)
        shared_objs = {
            id(b) for p in restored.catalog.paths_by_task.values()
            for pp in [p] for path in pp for b in path.blocks
            if b.block_id == "shared"
        }
        assert len(shared_objs) == 1
        del paths

    def test_round_trip_solver_equivalence(self, tiny_problem):
        """Solving the restored problem must reproduce the original
        solution's decisions."""
        restored = problem_from_dict(problem_to_dict(tiny_problem))
        a = OffloaDNNSolver().solve(tiny_problem)
        b = OffloaDNNSolver().solve(restored)
        for task in tiny_problem.tasks:
            assert (
                a.assignment(task).path.path_id == b.assignment(task).path.path_id
            )
            assert a.assignment(task).admission_ratio == pytest.approx(
                b.assignment(task).admission_ratio
            )

    def test_version_check(self, tiny_problem):
        data = problem_to_dict(tiny_problem)
        data["version"] = 99
        with pytest.raises(ValueError, match="unsupported serialization version"):
            problem_from_dict(data)

    def test_file_round_trip(self, tiny_problem, tmp_path):
        file = tmp_path / "problem.json"
        dump_problem(tiny_problem, str(file))
        restored = load_problem(str(file))
        assert len(restored.tasks) == 3

    def test_scenario_problem_round_trip(self):
        problem = small_scale_problem(3)
        restored = problem_from_dict(problem_to_dict(problem))
        a = OffloaDNNSolver().solve(problem)
        b = OffloaDNNSolver().solve(restored)
        assert objective_value(problem, a) == pytest.approx(
            objective_value(restored, b)
        )


class TestSolutionRoundTrip:
    def test_round_trip_preserves_assignments(self, tiny_problem):
        solution = OffloaDNNSolver().solve(tiny_problem)
        data = solution_to_dict(solution)
        assert data["version"] == FORMAT_VERSION
        restored = solution_from_dict(data, tiny_problem)
        for task in tiny_problem.tasks:
            original = solution.assignment(task)
            loaded = restored.assignment(task)
            assert loaded.admission_ratio == pytest.approx(original.admission_ratio)
            assert loaded.radio_blocks == original.radio_blocks
            assert loaded.path.path_id == original.path.path_id

    def test_objective_preserved(self, tiny_problem):
        solution = OffloaDNNSolver().solve(tiny_problem)
        restored = solution_from_dict(solution_to_dict(solution), tiny_problem)
        assert objective_value(tiny_problem, restored) == pytest.approx(
            objective_value(tiny_problem, solution)
        )

    def test_rejected_task_round_trip(self, tiny_problem):
        from repro.core.solution import Assignment, DOTSolution

        solution = DOTSolution()
        for task in tiny_problem.tasks:
            solution.assignments[task.task_id] = Assignment(
                task=task, path=None, admission_ratio=0.0, radio_blocks=0
            )
        restored = solution_from_dict(solution_to_dict(solution), tiny_problem)
        assert restored.admitted_task_count == 0

    def test_unknown_path_rejected(self, tiny_problem):
        solution = OffloaDNNSolver().solve(tiny_problem)
        data = solution_to_dict(solution)
        data["assignments"][0]["path_id"] = "nonexistent"
        with pytest.raises(KeyError, match="unknown path"):
            solution_from_dict(data, tiny_problem)

    def test_file_round_trip(self, tiny_problem, tmp_path):
        solution = OffloaDNNSolver().solve(tiny_problem)
        file = tmp_path / "solution.json"
        dump_solution(solution, str(file))
        restored = load_solution(str(file), tiny_problem)
        assert restored.admitted_task_count == solution.admitted_task_count

    def test_quality_variant_round_trip(self):
        """A solution using a quality-expanded path restores correctly."""
        from repro.core.catalog import Catalog
        from repro.core.problem import Budgets, DOTProblem, RadioModel
        from repro.core.task import QualityLevel, Task
        from tests.conftest import make_block, make_path

        q_low = QualityLevel("low", 100_000.0, accuracy_factor=0.9)
        q_high = QualityLevel("high", 350_000.0, accuracy_factor=1.0)
        task = Task(
            task_id=1, name="t", method="cls", priority=0.9, request_rate=5.0,
            min_accuracy=0.5, max_latency_s=0.4, qualities=(q_low, q_high),
        )
        catalog = Catalog()
        catalog.add_path(make_path(task, "p", (make_block("b"),), accuracy=0.9))
        problem = DOTProblem(
            tasks=(task,), catalog=catalog,
            budgets=Budgets(2.5, 1000.0, 8.0, 50),
            radio=RadioModel(default_bits_per_rb=350_000.0),
        )
        solution = OffloaDNNSolver().solve(problem)
        restored = solution_from_dict(solution_to_dict(solution), problem)
        assert (
            restored.assignment(task).path.quality
            == solution.assignment(task).path.quality
        )
