"""Compiled engine: numerical parity with eager, interface equivalence.

The compiled plan (BN folding, fused conv kernels, buffer arenas) must
be indistinguishable from the eager engine to every consumer: same
outputs to float32 tolerance, same ``flops``/``output_shape``
arithmetic, stable across repeated calls on reused buffers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.compile import CompiledModule, compile_module, fold_batch_norm
from repro.dnn.configs import TABLE_I_CONFIGS
from repro.dnn.graph import Sequential
from repro.dnn.layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Linear,
    ReLU,
    ReLU6,
)
from repro.dnn.mobilenet import build_mobilenetv2
from repro.dnn.pruning import prune_resnet
from repro.dnn.resnet import build_resnet18

PARITY_TOL = 1e-4


def _randomize_bn(module, rng, spread=0.5):
    """Give every BN non-trivial statistics so folding is actually tested.

    ``spread`` bounds how far gamma/var stray from 1 — deep stacks
    (MobileNetV2 has ~35 BNs) need modest per-layer gain or activations
    amplify until plain float32 accumulation error breaks the eager
    engine too, which is not what this suite is measuring.
    """
    for layer in module.iter_layers():
        if isinstance(layer, BatchNorm2d):
            c = layer.channels
            layer.gamma = rng.uniform(1 - spread, 1 + spread, c).astype(np.float32)
            layer.beta = rng.normal(0.0, 0.2, c).astype(np.float32)
            layer.running_mean = rng.normal(0.0, 0.5, c).astype(np.float32)
            layer.running_var = rng.uniform(1 - spread, 1 + spread, c).astype(
                np.float32
            )


def _assert_parity(model, batch_sizes=(1, 8), tol=PARITY_TOL, bn_spread=0.5):
    rng = np.random.default_rng(0)
    seq = model._as_sequential
    _randomize_bn(seq, rng, spread=bn_spread)
    compiled = compile_module(model)
    for n in batch_sizes:
        x = rng.standard_normal((n, *model.input_shape), dtype=np.float32)
        eager = seq.forward(x)
        fused = compiled.forward(x)
        assert fused.shape == eager.shape
        assert float(np.abs(fused - eager).max()) < tol


class TestResNetParity:
    @pytest.mark.parametrize("name", sorted(TABLE_I_CONFIGS))
    def test_all_table_i_configs(self, name):
        config = TABLE_I_CONFIGS[name]
        model = build_resnet18(num_classes=10, input_size=16, width=8, seed=0)
        if config.pruned:
            prune_resnet(model, set(config.prunable_blocks), config.prune_ratio)
        _assert_parity(model)

    def test_large_input_stem_with_maxpool(self):
        # >= 64 px uses the 7x7/stride-2 stem + 3x3 maxpool variant
        model = build_resnet18(num_classes=10, input_size=64, width=8, seed=1)
        _assert_parity(model)

    def test_heavily_pruned_variant(self):
        model = build_resnet18(num_classes=10, input_size=16, width=16, seed=2)
        prune_resnet(model, {"layer1", "layer2", "layer3", "layer4"}, 0.8)
        _assert_parity(model)


class TestMobileNetParity:
    @pytest.mark.parametrize("mult", [0.25, 0.5])
    def test_width_multipliers(self, mult):
        model = build_mobilenetv2(
            num_classes=10, input_size=16, width_multiplier=mult, seed=0
        )
        _assert_parity(model, bn_spread=0.1)


class TestStridesAndPaddings:
    @pytest.mark.parametrize("kernel,stride,padding", [
        (1, 1, 0),
        (1, 2, 0),
        (3, 1, 1),
        (3, 2, 1),
        (5, 1, 2),
        (3, 1, 0),
    ])
    def test_fused_conv_geometries(self, kernel, stride, padding):
        rng = np.random.default_rng(3)
        seq = Sequential(
            Conv2d(3, 6, kernel=kernel, stride=stride, padding=padding, rng=rng),
            BatchNorm2d(6),
            ReLU(),
        )
        _randomize_bn(seq, rng)
        compiled = compile_module(seq, (3, 12, 12))
        for n in (1, 8):
            x = rng.standard_normal((n, 3, 12, 12), dtype=np.float32)
            diff = np.abs(compiled.forward(x) - seq.forward(x)).max()
            assert float(diff) < PARITY_TOL

    @pytest.mark.parametrize("stride", [1, 2])
    def test_fused_depthwise_geometries(self, stride):
        rng = np.random.default_rng(4)
        seq = Sequential(
            DepthwiseConv2d(5, kernel=3, stride=stride, padding=1, rng=rng),
            BatchNorm2d(5),
            ReLU6(),
        )
        _randomize_bn(seq, rng)
        compiled = compile_module(seq, (5, 9, 9))
        for n in (1, 8):
            x = rng.standard_normal((n, 5, 9, 9), dtype=np.float32)
            diff = np.abs(compiled.forward(x) - seq.forward(x)).max()
            assert float(diff) < PARITY_TOL


class TestInterface:
    def _model(self):
        return build_resnet18(num_classes=10, input_size=16, width=8, seed=0)

    def test_flops_and_output_shape_match_eager(self):
        model = self._model()
        seq = model._as_sequential
        compiled = compile_module(model)
        shape = model.input_shape
        assert compiled.flops(shape) == seq.flops(shape)
        assert compiled.output_shape(shape) == seq.output_shape(shape)
        assert compiled.activation_size(shape) == seq.activation_size(shape)

    def test_is_drop_in_layer(self):
        compiled = compile_module(self._model())
        assert isinstance(compiled, CompiledModule)
        assert compiled.kind == "compiled"
        assert len(compiled.parameters()) > 0

    def test_repeated_calls_are_stable(self):
        # plan buffers are reused across calls; outputs must not decay
        compiled = compile_module(self._model())
        x = np.random.default_rng(5).standard_normal((2, 3, 16, 16), dtype=np.float32)
        first = compiled.forward(x)
        for _ in range(3):
            np.testing.assert_array_equal(compiled.forward(x), first)

    def test_outputs_are_owned_copies(self):
        compiled = compile_module(self._model())
        rng = np.random.default_rng(6)
        x = rng.standard_normal((1, 3, 16, 16), dtype=np.float32)
        first = compiled.forward(x)
        snapshot = first.copy()
        compiled.forward(rng.standard_normal((1, 3, 16, 16), dtype=np.float32))
        np.testing.assert_array_equal(first, snapshot)

    def test_wrong_input_shape_rejected(self):
        compiled = compile_module(self._model())
        with pytest.raises(ValueError):
            compiled.forward(np.zeros((1, 3, 8, 8), dtype=np.float32))

    def test_plan_fuses_all_batchnorms(self):
        compiled = compile_module(self._model())
        labels = compiled.plan_summary()
        assert labels
        assert not any(label.lstrip().endswith("batchnorm") for label in labels)
        assert any("conv" in label and "+bn" in label for label in labels)

    def test_release_buffers_then_rerun(self):
        compiled = compile_module(self._model())
        x = np.random.default_rng(7).standard_normal((2, 3, 16, 16), dtype=np.float32)
        first = compiled.forward(x)
        compiled.release_buffers()
        np.testing.assert_array_equal(compiled.forward(x), first)

    def test_compile_rejects_non_layer(self):
        with pytest.raises(TypeError):
            compile_module(object())

    def test_compile_layer_requires_input_shape(self):
        with pytest.raises(ValueError):
            compile_module(Sequential(ReLU()))

    def test_module_compile_hook(self):
        seq = Sequential(Conv2d(3, 4, kernel=3, stride=1, padding=1), ReLU())
        compiled = seq.compile((3, 8, 8))
        x = np.random.default_rng(8).standard_normal((1, 3, 8, 8), dtype=np.float32)
        assert float(np.abs(compiled.forward(x) - seq.forward(x)).max()) < PARITY_TOL

    def test_blockwise_model_compile_hook(self):
        model = self._model()
        compiled = model.compile()
        assert compiled.input_shape == tuple(model.input_shape)


class TestFoldBatchNorm:
    def test_folding_matches_sequential_application(self):
        rng = np.random.default_rng(9)
        conv = Conv2d(3, 4, kernel=3, stride=1, padding=1, rng=rng)
        bn = BatchNorm2d(4)
        seq = Sequential(conv, bn)
        _randomize_bn(seq, rng)
        w, b = fold_batch_norm(conv.weight, conv.bias, bn)
        folded = Conv2d(3, 4, kernel=3, stride=1, padding=1)
        folded.weight, folded.bias = w, b
        x = rng.standard_normal((2, 3, 8, 8), dtype=np.float32)
        assert float(np.abs(folded.forward(x) - seq.forward(x)).max()) < PARITY_TOL


class TestLinearWeightCache:
    def test_weight_t_is_contiguous_and_correct(self):
        layer = Linear(6, 4)
        assert layer.weight_t.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(layer.weight_t, layer.weight.T)

    def test_reassignment_invalidates(self):
        layer = Linear(6, 4)
        stale = layer.weight_t
        layer.weight = np.ones((4, 6), dtype=np.float32)
        assert layer.weight_t is not stale
        np.testing.assert_array_equal(layer.weight_t, layer.weight.T)

    def test_parameters_access_invalidates(self):
        # fine-tuning mutates the arrays returned by parameters() in place
        layer = Linear(6, 4)
        _ = layer.weight_t
        params = layer.parameters()
        params[0][...] = 2.0
        np.testing.assert_array_equal(layer.weight_t, layer.weight.T)

    def test_forward_matches_manual_gemm(self):
        layer = Linear(6, 4)
        x = np.random.default_rng(10).standard_normal((3, 6), dtype=np.float32)
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.weight.T + layer.bias, atol=1e-6
        )


class TestConcurrentForward:
    """Regression: a shared scratch made concurrent forwards corrupt
    each other; buffers are now keyed per (thread, batch size)."""

    def test_two_threads_same_batch_match_eager(self):
        import threading

        model = build_resnet18(num_classes=5, input_size=16, width=16, seed=0)
        compiled = compile_module(model)
        rng = np.random.default_rng(11)
        inputs = [
            rng.standard_normal((4, *model.input_shape), dtype=np.float32)
            for _ in range(2)
        ]
        expected = [model.forward(x) for x in inputs]
        errors: list[float] = []
        barrier = threading.Barrier(2)

        def worker(idx: int) -> None:
            barrier.wait()
            for _ in range(12):
                out = compiled.forward(inputs[idx])
                errors.append(float(np.abs(out - expected[idx]).max()))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(errors) == 24
        assert max(errors) < PARITY_TOL

    def test_scratch_keyed_per_thread_and_batch(self):
        model = build_resnet18(num_classes=5, input_size=16, width=8, seed=0)
        compiled = compile_module(model)
        x1 = np.zeros((1, *model.input_shape), dtype=np.float32)
        x4 = np.zeros((4, *model.input_shape), dtype=np.float32)
        compiled.forward(x1)
        compiled.forward(x4)
        import threading

        ident = threading.get_ident()
        assert set(compiled._scratch) == {(ident, 1), (ident, 4)}
