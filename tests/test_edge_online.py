"""Tests for the online arrival/departure study."""

from __future__ import annotations

import pytest

from repro.edge.online import OnlineStudy


@pytest.fixture(scope="module")
def light_trace():
    return OnlineStudy(
        arrival_rate_per_s=0.2, mean_lifetime_s=20.0, horizon_s=60.0, seed=1
    ).run()


class TestOnlineStudy:
    def test_arrivals_accounted(self, light_trace):
        assert light_trace.arrivals == light_trace.admissions + light_trace.rejections
        assert light_trace.arrivals > 0

    def test_all_admitted_tasks_eventually_depart(self, light_trace):
        assert light_trace.departures == light_trace.admissions
        final = light_trace.snapshots[-1]
        assert final.active_tasks == 0

    def test_memory_returns_to_zero(self, light_trace):
        final = light_trace.snapshots[-1]
        assert final.deployed_memory_gb == pytest.approx(0.0, abs=1e-9)
        assert final.active_blocks == 0
        assert final.allocated_rbs == 0

    def test_light_load_admits_everything(self, light_trace):
        """~4 concurrent tasks on a 50-RB, 8-GB edge: no rejections."""
        assert light_trace.admission_fraction == pytest.approx(1.0)

    def test_memory_tracks_active_tasks(self, light_trace):
        for snapshot in light_trace.snapshots:
            if snapshot.active_tasks == 0:
                assert snapshot.deployed_memory_gb == pytest.approx(0.0, abs=1e-9)
            else:
                assert snapshot.deployed_memory_gb > 0

    def test_heavy_load_rejects_some(self):
        trace = OnlineStudy(
            arrival_rate_per_s=2.0, mean_lifetime_s=60.0, horizon_s=60.0, seed=2
        ).run()
        # offered load ~120 concurrent-task-equivalents on a 50-RB pool
        assert trace.rejections > 0
        assert 0.0 < trace.admission_fraction < 1.0

    def test_rb_pool_never_exceeded(self):
        study = OnlineStudy(
            arrival_rate_per_s=2.0, mean_lifetime_s=60.0, horizon_s=40.0, seed=3
        )
        trace = study.run()
        assert all(s.allocated_rbs <= study.radio_blocks for s in trace.snapshots)

    def test_deterministic_given_seed(self):
        a = OnlineStudy(arrival_rate_per_s=0.3, horizon_s=30.0, seed=9).run()
        b = OnlineStudy(arrival_rate_per_s=0.3, horizon_s=30.0, seed=9).run()
        assert [s.task_id for s in a.snapshots] == [s.task_id for s in b.snapshots]
        assert a.admissions == b.admissions

    def test_series_extraction(self, light_trace):
        times, values = light_trace.series("active_tasks")
        assert len(times) == len(values) == len(light_trace.snapshots)
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineStudy(arrival_rate_per_s=0.0)
        with pytest.raises(ValueError):
            OnlineStudy(horizon_s=0.0)

    def test_warm_start_trace_identical(self):
        """Warm-started churn produces the exact same trace as cold
        solves — clique reuse is a performance lever, not a policy one."""
        kwargs = dict(
            arrival_rate_per_s=1.0, mean_lifetime_s=30.0, horizon_s=45.0,
            seed=7,
        )
        cold = OnlineStudy(**kwargs).run()
        warm = OnlineStudy(**kwargs, warm_start=True).run()
        assert [
            (s.task_id, s.event, s.admitted, s.allocated_rbs,
             s.deployed_memory_gb)
            for s in cold.snapshots
        ] == [
            (s.task_id, s.event, s.admitted, s.allocated_rbs,
             s.deployed_memory_gb)
            for s in warm.snapshots
        ]
        assert cold.admissions == warm.admissions
        assert cold.rejections == warm.rejections

    def test_exhaustion_wave_recovers(self):
        """An overload burst saturates the pools (zero-headroom solves)
        without crashing, and capacity frees up again after departures."""
        trace = OnlineStudy(
            arrival_rate_per_s=4.0, mean_lifetime_s=20.0, horizon_s=30.0,
            memory_gb=2.0, compute_s=0.5, radio_blocks=12, seed=11,
        ).run()
        assert trace.rejections > 0
        # the run completed through saturation and drained cleanly
        final = trace.snapshots[-1]
        assert final.active_tasks == 0
        assert final.allocated_rbs == 0
