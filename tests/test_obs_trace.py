"""Span tracer unit tests: recording, context, zero-cost disabled path."""

from __future__ import annotations

import threading

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    activate,
    current_tracer,
    deactivate,
    use_tracer,
)


class FakeClock:
    """Deterministic clock: returns queued values in order."""

    def __init__(self, *values: float):
        self.values = list(values)

    def __call__(self) -> float:
        return self.values.pop(0)


class TestNullTracer:
    def test_disabled_predicate(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer.enabled is False

    def test_span_is_shared_noop(self):
        with NULL_TRACER.span("anything", cat="x", foo=1) as span:
            pass
        # the same context-manager object every time: no allocation
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert span is NULL_TRACER.span("c")

    def test_record_and_events_do_nothing(self):
        NULL_TRACER.record("x", 0.0, 1.0)
        NULL_TRACER.event("x")
        NULL_TRACER.event_at("x", 5.0)
        # NullTracer has no storage at all
        assert not hasattr(NULL_TRACER, "records")


class TestTracer:
    def test_span_records_interval(self):
        tracer = Tracer(clock=FakeClock(10.0, 12.5), domain="wall")
        with tracer.span("phase", cat="solver", track="t0", items=3):
            pass
        assert tracer.records == [
            SpanRecord(
                name="phase",
                ts=10.0,
                dur=2.5,
                cat="solver",
                track="t0",
                args={"items": 3},
            )
        ]

    def test_span_records_even_on_exception(self):
        tracer = Tracer(clock=FakeClock(1.0, 2.0))
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(tracer.records) == 1
        assert tracer.records[0].dur == 1.0

    def test_explicit_record_never_calls_clock(self):
        tracer = Tracer(clock=FakeClock(), domain="virtual")  # empty clock
        tracer.record("des", 3.0, 0.25, track="req1")
        assert tracer.records[0].ts == 3.0
        assert tracer.records[0].dur == 0.25
        assert tracer.records[0].phase == "X"

    def test_event_at_is_instant(self):
        tracer = Tracer(domain="virtual")
        tracer.event_at("drop", 7.0, cat="serving", args={"request": 3})
        record = tracer.records[0]
        assert record.phase == "i"
        assert record.dur == 0.0
        assert record.ts == 7.0

    def test_event_stamps_clock(self):
        tracer = Tracer(clock=FakeClock(4.0))
        tracer.event("tick", foo="bar")
        assert tracer.records[0].ts == 4.0
        assert tracer.records[0].args == {"foo": "bar"}

    def test_clear(self):
        tracer = Tracer()
        tracer.event_at("x", 0.0)
        tracer.clear()
        assert tracer.records == []

    def test_enabled_by_default(self):
        assert Tracer().enabled is True


class TestThreadLocalContext:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_activate_deactivate(self):
        tracer = Tracer()
        activate(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            deactivate()
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_restores_previous(self):
        outer, inner = Tracer(), Tracer()
        with use_tracer(outer):
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_exception(self):
        tracer = Tracer()
        try:
            with use_tracer(tracer):
                raise ValueError("boom")
        except ValueError:
            pass
        assert current_tracer() is NULL_TRACER

    def test_threads_do_not_inherit_context(self):
        """Propagation into workers is explicit, never ambient."""
        tracer = Tracer()
        seen: list[object] = []

        def worker():
            seen.append(current_tracer())
            activate(tracer)  # explicit opt-in works
            seen.append(current_tracer())
            deactivate()

        with use_tracer(tracer):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [NULL_TRACER, tracer]

    def test_threads_may_share_one_tracer(self):
        """List appends are GIL-atomic; workers record into one tracer."""
        tracer = Tracer(domain="wall")

        def worker(i: int):
            activate(tracer)
            tracer.record(f"job{i}", float(i), 1.0)
            deactivate()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(r.name for r in tracer.records) == [
            "job0", "job1", "job2", "job3",
        ]
