"""Integration tests: the large-scale evaluation (Figs. 9-10, headline).

Asserts the published qualitative shapes: OffloaDNN admits more tasks
than SEM-O-RAN at every load, saves the bulk of memory and inference
compute, saturates the RB pool as rates grow, and degrades admission
gracefully (full ratios for top priorities, diminishing ratios, then
rejections) at high load.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import fig10_largescale_comparison, headline_comparison
from repro.baselines.semoran import SemORANSolver
from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import check_constraints, objective_value
from repro.workloads.largescale import RequestRate, large_scale_problem


@pytest.fixture(scope="module")
def solved():
    out = {}
    for rate in RequestRate:
        problem = large_scale_problem(rate, seed=0)
        out[rate] = (
            problem,
            OffloaDNNSolver().solve(problem),
            SemORANSolver().solve(problem),
        )
    return out


class TestFig9AdmissionShapes:
    def test_low_rate_all_admitted(self, solved):
        _, offloadnn, semoran = solved[RequestRate.LOW]
        assert offloadnn.admitted_task_count == 20
        assert all(
            a.admission_ratio == pytest.approx(1.0)
            for a in offloadnn.assignments.values()
        )
        assert semoran.admitted_task_count == 16

    def test_medium_rate_nearly_all_admitted(self, solved):
        _, offloadnn, semoran = solved[RequestRate.MEDIUM]
        ratios = offloadnn.admission_vector()
        fully = sum(1 for z in ratios.values() if z >= 0.99)
        assert fully >= 19
        assert semoran.admitted_task_count == 16

    def test_high_rate_graceful_degradation(self, solved):
        """Top-priority tasks fully admitted, then diminishing ratios,
        then rejections (the Fig. 9-bottom staircase)."""
        _, offloadnn, _ = solved[RequestRate.HIGH]
        ratios = [offloadnn.assignment(t).admission_ratio for t in range(1, 21)]
        # top 10 fully admitted
        assert all(z == pytest.approx(1.0) for z in ratios[:10])
        # at least one partially admitted task exists
        assert any(0.0 < z < 1.0 for z in ratios)
        # the lowest-priority tasks are rejected
        assert ratios[-1] == 0.0
        # ratios are non-increasing with task id (priority order)
        assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:]))

    def test_semoran_binary_staircase(self, solved):
        for rate in RequestRate:
            _, _, semoran = solved[rate]
            ratios = [semoran.assignment(t).admission_ratio for t in range(1, 21)]
            assert set(ratios) <= {0.0, 1.0}
            # prefix property: a rejected task is never followed by an
            # admitted one under value-greedy admission with uniform costs
            first_zero = ratios.index(0.0) if 0.0 in ratios else len(ratios)
            assert all(z == 0.0 for z in ratios[first_zero:])


class TestFig10ResourceShapes:
    def test_offloadnn_admits_more_at_every_rate(self, solved):
        for rate in RequestRate:
            _, offloadnn, semoran = solved[rate]
            assert offloadnn.admitted_task_count > semoran.admitted_task_count
            assert (
                offloadnn.weighted_admission_ratio
                >= semoran.weighted_admission_ratio - 1e-9
            )

    def test_rb_saving_at_low_rate(self, solved):
        """OffloaDNN leaves ~1/3 of the pool free at low rate while
        SEM-O-RAN's balanced allocation uses it all."""
        problem, offloadnn, semoran = solved[RequestRate.LOW]
        off_frac = offloadnn.total_radio_blocks / problem.budgets.radio_blocks
        sem_frac = semoran.total_radio_blocks / problem.budgets.radio_blocks
        assert off_frac < 0.75
        assert sem_frac > 0.95

    def test_rb_saturation_as_rate_grows(self, solved):
        fractions = []
        for rate in RequestRate:
            problem, offloadnn, _ = solved[rate]
            fractions.append(
                offloadnn.total_radio_blocks / problem.budgets.radio_blocks
            )
        assert fractions[0] < fractions[1] <= fractions[2] + 1e-9
        assert fractions[2] > 0.95

    def test_memory_saving_majority(self, solved):
        """Fig. 10 center-right: block shaping/sharing saves >70% memory."""
        for rate in RequestRate:
            _, offloadnn, semoran = solved[rate]
            assert offloadnn.total_memory_gb < 0.3 * semoran.total_memory_gb

    def test_memory_constant_low_medium_lower_high(self, solved):
        """The paper: same memory at low/medium (same branch); less at
        high because rejected tasks deploy no blocks."""
        mem = {
            rate: solved[rate][1].total_memory_gb for rate in RequestRate
        }
        assert mem[RequestRate.LOW] == pytest.approx(mem[RequestRate.MEDIUM], rel=0.01)
        assert mem[RequestRate.HIGH] < mem[RequestRate.LOW]

    def test_inference_compute_saving_majority(self, solved):
        for rate in RequestRate:
            _, offloadnn, semoran = solved[rate]
            assert (
                offloadnn.total_inference_compute_s
                < 0.35 * semoran.total_inference_compute_s
            )

    def test_dot_cost_rises_with_rate(self, solved):
        costs = []
        for rate in RequestRate:
            problem, offloadnn, _ = solved[rate]
            costs.append(objective_value(problem, offloadnn))
        assert costs[0] < costs[1] < costs[2]

    def test_all_solutions_feasible(self, solved):
        for rate in RequestRate:
            problem, offloadnn, semoran = solved[rate]
            assert check_constraints(problem, offloadnn).feasible
            assert check_constraints(problem, semoran).feasible


class TestHeadlineNumbers:
    def test_headline_ranges(self):
        """The paper reports +26.9% tasks, -82.5% memory, -77.4% compute,
        -4.4% radio; our substrate reproduces the same magnitudes."""
        headline = headline_comparison(seed=0)
        assert 15.0 < headline["admitted_tasks_gain_pct"] < 40.0
        assert 70.0 < headline["memory_saving_pct"] < 95.0
        assert 65.0 < headline["inference_compute_saving_pct"] < 90.0
        assert 0.0 < headline["radio_saving_pct"] < 25.0

    def test_fig10_data_complete(self):
        data = fig10_largescale_comparison(seed=0)
        assert set(data) == {"low", "medium", "high"}
        for metrics in data.values():
            assert metrics["offloadnn_memory_fraction"] <= 1.0
            assert metrics["semoran_memory_fraction"] <= 1.0
