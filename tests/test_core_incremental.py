"""Unit tests for the dynamic (incremental) DOT extension."""

from __future__ import annotations

import pytest

from repro.core.heuristic import OffloaDNNSolver
from repro.core.incremental import deployed_block_ids, discount_problem
from repro.core.objective import check_constraints
from repro.core.problem import Budgets, DOTProblem
from tests.conftest import make_block, make_path, make_task
from repro.core.catalog import Catalog
from repro.core.problem import RadioModel


def _two_wave_problems():
    """Wave 1 problem and a wave-2 problem sharing the same base block."""
    shared = make_block("shared", compute_time_s=0.004, memory_gb=2.0,
                        training_cost_s=100.0)
    quality = make_task(0).qualities[0]

    def build(task_ids, priorities):
        catalog = Catalog()
        tasks = []
        for tid, p in zip(task_ids, priorities):
            task = make_task(tid, priority=p, min_accuracy=0.7, quality=quality)
            tasks.append(task)
            own = make_block(f"own{tid}", compute_time_s=0.003, memory_gb=0.5,
                             training_cost_s=20.0)
            catalog.add_path(make_path(task, f"p{tid}", (shared, own), accuracy=0.9))
        budgets = Budgets(compute_time_s=2.5, training_budget_s=1000.0,
                          memory_gb=8.0, radio_blocks=50)
        return DOTProblem(tasks=tuple(tasks), catalog=catalog, budgets=budgets,
                          radio=RadioModel(default_bits_per_rb=350_000.0))

    return build([1, 2], [0.9, 0.8]), build([3, 4], [0.7, 0.6])


class TestDiscountProblem:
    def test_deployed_blocks_become_free(self):
        wave1, wave2 = _two_wave_problems()
        solution1 = OffloaDNNSolver().solve(wave1)
        deployed = deployed_block_ids(solution1)
        assert "shared" in deployed
        incremental = discount_problem(wave2, deployed)
        blocks = incremental.catalog.all_blocks()
        assert blocks["shared"].memory_gb == 0.0
        assert blocks["shared"].training_cost_s == 0.0
        assert blocks["own3"].memory_gb == 0.5  # new blocks keep their cost

    def test_capacities_discounted(self):
        wave1, wave2 = _two_wave_problems()
        solution1 = OffloaDNNSolver().solve(wave1)
        incremental = discount_problem(
            wave2,
            deployed_block_ids(solution1),
            used_memory_gb=solution1.total_memory_gb,
            used_compute_s=solution1.total_inference_compute_s,
            used_radio_blocks=solution1.total_radio_blocks,
        )
        assert incremental.budgets.memory_gb == pytest.approx(
            8.0 - solution1.total_memory_gb
        )
        assert incremental.budgets.radio_blocks == int(
            50 - solution1.total_radio_blocks
        )

    def test_incremental_solution_fits_global_budget(self):
        """Wave-1 usage plus discounted wave-2 usage stays within the
        original budgets — the correctness property of the extension."""
        wave1, wave2 = _two_wave_problems()
        solution1 = OffloaDNNSolver().solve(wave1)
        incremental = discount_problem(
            wave2,
            deployed_block_ids(solution1),
            used_memory_gb=solution1.total_memory_gb,
            used_compute_s=solution1.total_inference_compute_s,
            used_radio_blocks=solution1.total_radio_blocks,
        )
        solution2 = OffloaDNNSolver().solve(incremental)
        assert check_constraints(incremental, solution2).feasible
        total_memory = solution1.total_memory_gb + solution2.total_memory_gb
        total_rbs = solution1.total_radio_blocks + solution2.total_radio_blocks
        assert total_memory <= wave1.budgets.memory_gb + 1e-9
        assert total_rbs <= wave1.budgets.radio_blocks + 1e-9

    def test_newcomers_prefer_deployed_blocks(self):
        """With the shared trunk free, the shared path dominates any
        dedicated alternative of equal compute."""
        wave1, wave2 = _two_wave_problems()
        solution1 = OffloaDNNSolver().solve(wave1)
        incremental = discount_problem(wave2, deployed_block_ids(solution1))
        solution2 = OffloaDNNSolver().solve(incremental)
        for assignment in solution2.admitted_assignments():
            assert "shared" in assignment.path.block_ids()
        # the shared block contributes no new memory
        assert solution2.total_memory_gb == pytest.approx(2 * 0.5)

    def test_exhausted_capacity_yields_zero_headroom_instance(self):
        """A saturated platform is a *valid* instance, not an error:
        solvers reject everything instead of the caller crashing."""
        _, wave2 = _two_wave_problems()
        incremental = discount_problem(wave2, frozenset(), used_memory_gb=8.0)
        assert incremental.budgets.memory_gb == 0.0
        solution = OffloaDNNSolver().solve(incremental)
        assert solution.admitted_task_count == 0

    def test_all_pools_exhausted_rejects_all(self):
        _, wave2 = _two_wave_problems()
        incremental = discount_problem(
            wave2,
            frozenset(),
            used_memory_gb=100.0,
            used_compute_s=100.0,
            used_radio_blocks=100.0,
        )
        assert incremental.budgets.memory_gb == 0.0
        assert incremental.budgets.compute_time_s == 0.0
        assert incremental.budgets.radio_blocks == 0
        for engine in ("scalar", "vector"):
            solution = OffloaDNNSolver(engine=engine).solve(incremental)
            assert solution.admitted_task_count == 0
            assert check_constraints(incremental, solution).feasible

    def test_radio_discount_floors_instead_of_truncating(self):
        """Σ z·r fractionally below an integer must not eat a whole RB."""
        _, wave2 = _two_wave_problems()
        incremental = discount_problem(
            wave2, frozenset(), used_radio_blocks=12.999999999
        )
        assert incremental.budgets.radio_blocks == 37

    def test_discount_cache_shares_one_object_per_block_value(self):
        """Value-keyed caching: every occurrence of a block across paths
        maps to one discounted object, with the discount decided by the
        block's own value (not whichever same-id block was seen first)."""
        wave1, wave2 = _two_wave_problems()
        solution1 = OffloaDNNSolver().solve(wave1)
        incremental = discount_problem(wave2, deployed_block_ids(solution1))
        seen: dict[str, object] = {}
        for paths in incremental.catalog.paths_by_task.values():
            for path in paths:
                for block in path.blocks:
                    assert seen.setdefault(block.block_id, block) is block
        assert seen["shared"].memory_gb == 0.0
        assert seen["own3"].memory_gb == 0.5
        assert seen["own4"].memory_gb == 0.5

    def test_no_deployed_blocks_is_identity_costs(self):
        _, wave2 = _two_wave_problems()
        incremental = discount_problem(wave2, frozenset())
        original = wave2.catalog.all_blocks()
        discounted = incremental.catalog.all_blocks()
        for block_id, block in original.items():
            assert discounted[block_id].memory_gb == block.memory_gb


def _solution_key(solution):
    return [
        (
            tid,
            a.path.path_id if a.path else None,
            a.admission_ratio,
            a.radio_blocks,
        )
        for tid, a in sorted(solution.assignments.items())
    ]


class TestWarmStartSolver:
    def test_matches_cold_solve_exactly(self):
        from repro.core.incremental import WarmStartSolver

        wave1, _ = _two_wave_problems()
        warm = WarmStartSolver()
        cold = OffloaDNNSolver().solve(wave1)
        first = warm.solve(wave1)
        second = warm.solve(wave1)
        assert _solution_key(first) == _solution_key(cold)
        assert _solution_key(second) == _solution_key(cold)
        assert warm.last_reused == len(wave1.tasks)
        assert warm.last_built == 0

    def test_churn_reuses_surviving_cliques(self):
        from repro.core.incremental import WarmStartSolver

        shared = make_block("trunk", compute_time_s=0.004, memory_gb=2.0,
                            training_cost_s=100.0)
        quality = make_task(0).qualities[0]

        def build(task_ids):
            catalog = Catalog()
            tasks = []
            paths_by_id = {}
            for tid in task_ids:
                task = make_task(tid, priority=0.9 - 0.01 * tid,
                                 min_accuracy=0.7, quality=quality)
                tasks.append(task)
                own = make_block(f"own{tid}", compute_time_s=0.003,
                                 memory_gb=0.5, training_cost_s=20.0)
                catalog.add_path(
                    make_path(task, f"p{tid}", (shared, own), accuracy=0.9)
                )
                paths_by_id[tid] = catalog.paths_for(tid)
            budgets = Budgets(compute_time_s=2.5, training_budget_s=1000.0,
                              memory_gb=8.0, radio_blocks=50)
            return DOTProblem(
                tasks=tuple(tasks), catalog=catalog, budgets=budgets,
                radio=RadioModel(default_bits_per_rb=350_000.0),
            ), paths_by_id

        warm = WarmStartSolver()
        problem1, paths1 = build([1, 2, 3])
        warm.solve(problem1)
        assert warm.last_built == 3

        # task 3 departs, task 4 arrives; survivors keep their path tuples
        problem2, _ = build([1, 2, 4])
        problem2.catalog.paths_by_task[1] = paths1[1]
        problem2.catalog.paths_by_task[2] = paths1[2]
        warm.forget(3)
        solution = warm.solve(problem2)
        assert warm.last_reused == 2
        assert warm.last_built == 1
        assert _solution_key(solution) == _solution_key(
            OffloaDNNSolver().solve(problem2)
        )

    def test_changed_task_definition_rebuilds(self):
        from dataclasses import replace as dc_replace

        from repro.core.incremental import WarmStartSolver

        wave1, _ = _two_wave_problems()
        warm = WarmStartSolver()
        warm.solve(wave1)
        tighter = tuple(
            dc_replace(t, max_latency_s=t.max_latency_s / 2) for t in wave1.tasks
        )
        changed = DOTProblem(
            tasks=tighter,
            catalog=wave1.catalog,
            budgets=wave1.budgets,
            radio=wave1.radio,
            alpha=wave1.alpha,
        )
        solution = warm.solve(changed)
        assert warm.last_built == len(wave1.tasks)
        assert _solution_key(solution) == _solution_key(
            OffloaDNNSolver().solve(changed)
        )

    def test_rejects_multi_branch_base(self):
        from repro.core.incremental import WarmStartSolver

        with pytest.raises(ValueError, match="first-branch"):
            WarmStartSolver(base=OffloaDNNSolver(explore_branches=3))

    def test_prune_and_clear(self):
        from repro.core.incremental import WarmStartSolver

        wave1, _ = _two_wave_problems()
        warm = WarmStartSolver()
        warm.solve(wave1)
        warm.prune({1})
        assert warm.cached_tasks == 1
        warm.clear()
        assert warm.cached_tasks == 0
