"""Unit tests for the dynamic (incremental) DOT extension."""

from __future__ import annotations

import pytest

from repro.core.heuristic import OffloaDNNSolver
from repro.core.incremental import deployed_block_ids, discount_problem
from repro.core.objective import check_constraints
from repro.core.problem import Budgets, DOTProblem
from tests.conftest import make_block, make_path, make_task
from repro.core.catalog import Catalog
from repro.core.problem import RadioModel


def _two_wave_problems():
    """Wave 1 problem and a wave-2 problem sharing the same base block."""
    shared = make_block("shared", compute_time_s=0.004, memory_gb=2.0,
                        training_cost_s=100.0)
    quality = make_task(0).qualities[0]

    def build(task_ids, priorities):
        catalog = Catalog()
        tasks = []
        for tid, p in zip(task_ids, priorities):
            task = make_task(tid, priority=p, min_accuracy=0.7, quality=quality)
            tasks.append(task)
            own = make_block(f"own{tid}", compute_time_s=0.003, memory_gb=0.5,
                             training_cost_s=20.0)
            catalog.add_path(make_path(task, f"p{tid}", (shared, own), accuracy=0.9))
        budgets = Budgets(compute_time_s=2.5, training_budget_s=1000.0,
                          memory_gb=8.0, radio_blocks=50)
        return DOTProblem(tasks=tuple(tasks), catalog=catalog, budgets=budgets,
                          radio=RadioModel(default_bits_per_rb=350_000.0))

    return build([1, 2], [0.9, 0.8]), build([3, 4], [0.7, 0.6])


class TestDiscountProblem:
    def test_deployed_blocks_become_free(self):
        wave1, wave2 = _two_wave_problems()
        solution1 = OffloaDNNSolver().solve(wave1)
        deployed = deployed_block_ids(solution1)
        assert "shared" in deployed
        incremental = discount_problem(wave2, deployed)
        blocks = incremental.catalog.all_blocks()
        assert blocks["shared"].memory_gb == 0.0
        assert blocks["shared"].training_cost_s == 0.0
        assert blocks["own3"].memory_gb == 0.5  # new blocks keep their cost

    def test_capacities_discounted(self):
        wave1, wave2 = _two_wave_problems()
        solution1 = OffloaDNNSolver().solve(wave1)
        incremental = discount_problem(
            wave2,
            deployed_block_ids(solution1),
            used_memory_gb=solution1.total_memory_gb,
            used_compute_s=solution1.total_inference_compute_s,
            used_radio_blocks=solution1.total_radio_blocks,
        )
        assert incremental.budgets.memory_gb == pytest.approx(
            8.0 - solution1.total_memory_gb
        )
        assert incremental.budgets.radio_blocks == int(
            50 - solution1.total_radio_blocks
        )

    def test_incremental_solution_fits_global_budget(self):
        """Wave-1 usage plus discounted wave-2 usage stays within the
        original budgets — the correctness property of the extension."""
        wave1, wave2 = _two_wave_problems()
        solution1 = OffloaDNNSolver().solve(wave1)
        incremental = discount_problem(
            wave2,
            deployed_block_ids(solution1),
            used_memory_gb=solution1.total_memory_gb,
            used_compute_s=solution1.total_inference_compute_s,
            used_radio_blocks=solution1.total_radio_blocks,
        )
        solution2 = OffloaDNNSolver().solve(incremental)
        assert check_constraints(incremental, solution2).feasible
        total_memory = solution1.total_memory_gb + solution2.total_memory_gb
        total_rbs = solution1.total_radio_blocks + solution2.total_radio_blocks
        assert total_memory <= wave1.budgets.memory_gb + 1e-9
        assert total_rbs <= wave1.budgets.radio_blocks + 1e-9

    def test_newcomers_prefer_deployed_blocks(self):
        """With the shared trunk free, the shared path dominates any
        dedicated alternative of equal compute."""
        wave1, wave2 = _two_wave_problems()
        solution1 = OffloaDNNSolver().solve(wave1)
        incremental = discount_problem(wave2, deployed_block_ids(solution1))
        solution2 = OffloaDNNSolver().solve(incremental)
        for assignment in solution2.admitted_assignments():
            assert "shared" in assignment.path.block_ids()
        # the shared block contributes no new memory
        assert solution2.total_memory_gb == pytest.approx(2 * 0.5)

    def test_exhausted_capacity_raises(self):
        _, wave2 = _two_wave_problems()
        with pytest.raises(ValueError, match="no remaining capacity"):
            discount_problem(wave2, frozenset(), used_memory_gb=8.0)

    def test_no_deployed_blocks_is_identity_costs(self):
        _, wave2 = _two_wave_problems()
        incremental = discount_problem(wave2, frozenset())
        original = wave2.catalog.all_blocks()
        discounted = incremental.catalog.all_blocks()
        for block_id, block in original.items():
            assert discounted[block_id].memory_gb == block.memory_gb
