"""Unit tests for the Table IV scenario generators."""

from __future__ import annotations

import pytest

from repro.core.task import QualityLevel
from repro.workloads.generator import (
    GROUP_NAMES,
    CostBasis,
    DNNFamily,
    ScenarioCatalogBuilder,
    cost_basis_from_profiler,
)
from repro.workloads.largescale import (
    LARGE_SCALE,
    RequestRate,
    large_scale_problem,
    large_scale_tasks,
)
from repro.workloads.smallscale import (
    SMALL_SCALE,
    small_scale_problem,
    small_scale_tasks,
)
from tests.conftest import make_task


class TestCostBasis:
    def test_full_path_magnitudes(self):
        basis = CostBasis()
        total_compute = sum(basis.compute_s.values())
        total_memory = sum(basis.memory_gb.values())
        assert 0.02 < total_compute < 0.06  # tens of ms
        assert 0.8 < total_memory < 1.2  # ~1 GB per full DNN

    def test_pruned_factors(self):
        basis = CostBasis()
        assert basis.group_compute("g4", pruned=True) == pytest.approx(
            basis.compute_s["g4"] * basis.pruned_compute_factor
        )
        assert basis.group_memory("g4", pruned=True) < basis.memory_gb["g4"]

    def test_all_ten_config_accuracies(self):
        basis = CostBasis()
        assert len(basis.accuracy) == 10
        assert basis.accuracy["CONFIG A"] == max(basis.accuracy.values())

    def test_from_profiler(self):
        basis = cost_basis_from_profiler(width=8, input_size=16, repeats=1)
        assert set(basis.compute_s) == set(GROUP_NAMES)
        # wall-clock ratios are noisy at toy widths; memory is exact
        assert basis.pruned_compute_factor > 0
        assert 0 < basis.pruned_memory_factor < 1
        assert len(basis.accuracy) == 10


class TestScenarioCatalogBuilder:
    def test_paths_per_task(self, quality):
        builder = ScenarioCatalogBuilder()
        tasks = (make_task(1), make_task(2))
        catalog = builder.build(tasks, quality)
        assert len(catalog.paths_for(1)) == 10  # all Table I configs

    def test_families_multiply_paths(self, quality):
        builder = ScenarioCatalogBuilder(
            families=(DNNFamily("a"), DNNFamily("b")),
            config_names=("CONFIG A", "CONFIG C"),
        )
        catalog = builder.build((make_task(1),), quality)
        assert len(catalog.paths_for(1)) == 4

    def test_shared_blocks_common_across_tasks(self, quality):
        builder = ScenarioCatalogBuilder(config_names=("CONFIG B", "CONFIG C"))
        catalog = builder.build((make_task(1), make_task(2)), quality)
        blocks = catalog.all_blocks()
        shared = [b for b in blocks if ":base:" in b]
        assert len(shared) == 3  # g1, g2, g3 of the single family

    def test_block_costs_consistent(self, quality):
        builder = ScenarioCatalogBuilder()
        catalog = builder.build(tuple(make_task(i) for i in range(1, 6)), quality)
        catalog.all_blocks()  # raises if any block id maps to two costs

    def test_paths_have_four_blocks(self, quality):
        builder = ScenarioCatalogBuilder()
        catalog = builder.build((make_task(1),), quality)
        for path in catalog.paths_for(1):
            assert len(path.blocks) == 4

    def test_deterministic_given_seed(self, quality):
        a = ScenarioCatalogBuilder(seed=5).build((make_task(1),), quality)
        b = ScenarioCatalogBuilder(seed=5).build((make_task(1),), quality)
        for pa, pb in zip(a.paths_for(1), b.paths_for(1)):
            assert pa.accuracy == pb.accuracy
            assert pa.compute_time_s == pb.compute_time_s

    def test_family_scaling(self, quality):
        builder = ScenarioCatalogBuilder(
            families=(DNNFamily("slim", compute_scale=0.5, memory_scale=0.5),),
            config_names=("CONFIG A",),
            compute_jitter=0.0,
        )
        catalog = builder.build((make_task(1),), quality)
        path = catalog.paths_for(1)[0]
        basis = CostBasis()
        assert path.compute_time_s == pytest.approx(0.5 * sum(basis.compute_s.values()))


class TestQuantizedVariants:
    """int8 catalog variants: the solver-visible quantization axis."""

    def test_quantized_variants_double_the_paths(self, quality):
        builder = ScenarioCatalogBuilder(quantized_variants=True)
        catalog = builder.build((make_task(1),), quality)
        paths = catalog.paths_for(1)
        assert len(paths) == 20  # 10 configs x {fp32, int8}
        assert sum(1 for p in paths if p.path_id.endswith("-int8")) == 10

    def test_int8_blocks_cheaper_not_cross_shared(self, quality):
        builder = ScenarioCatalogBuilder(
            config_names=("CONFIG B",), quantized_variants=True,
            compute_jitter=0.0, accuracy_jitter=0.0,
        )
        catalog = builder.build((make_task(1),), quality)
        by_id = {p.path_id: p for p in catalog.paths_for(1)}
        fp32 = by_id[next(k for k in by_id if not k.endswith("-int8"))]
        int8 = by_id[next(k for k in by_id if k.endswith("-int8"))]
        assert sum(b.memory_gb for b in int8.blocks) < 0.5 * sum(
            b.memory_gb for b in fp32.blocks
        )
        assert int8.compute_time_s < fp32.compute_time_s
        assert int8.accuracy == pytest.approx(fp32.accuracy - 0.005)
        fp32_shared = {b.block_id for b in fp32.blocks if ":base" in b.block_id}
        int8_shared = {b.block_id for b in int8.blocks if ":base" in b.block_id}
        assert int8_shared and not fp32_shared & int8_shared
        assert all(":base:int8:" in b for b in int8_shared)

    def test_solver_chooses_int8_under_tight_memory(self, quality):
        """Acceptance: under a tightened memory budget the DOT solver
        picks int8 variants and admits strictly more than the
        fp32-only catalog on the same instance."""
        from repro.core.heuristic import OffloaDNNSolver
        from repro.core.problem import Budgets, DOTProblem, RadioModel
        from repro.workloads.smallscale import (
            SMALL_SCALE_CONFIGS,
            SMALL_SCALE_FAMILIES,
        )

        def build_problem(quantized: bool) -> DOTProblem:
            tasks = small_scale_tasks(5)
            builder = ScenarioCatalogBuilder(
                families=SMALL_SCALE_FAMILIES,
                config_names=SMALL_SCALE_CONFIGS,
                quantized_variants=quantized,
                seed=0,
            )
            catalog = builder.build(tasks, tasks[0].qualities[0])
            return DOTProblem(
                tasks=tasks,
                catalog=catalog,
                budgets=Budgets(
                    compute_time_s=2.5,
                    training_budget_s=1000.0,
                    memory_gb=1.0,  # tightened: 8.0 in Table IV
                    radio_blocks=50,
                ),
                radio=RadioModel(default_bits_per_rb=350_000.0),
                alpha=0.5,
            )

        fp32_problem = build_problem(False)
        int8_problem = build_problem(True)
        fp32_solution = OffloaDNNSolver().solve(fp32_problem)
        int8_solution = OffloaDNNSolver().solve(int8_problem)
        assert (
            int8_solution.weighted_admission_ratio
            > fp32_solution.weighted_admission_ratio
        )
        assert (
            int8_solution.admitted_task_count
            > fp32_solution.admitted_task_count
        )
        chosen = [
            int8_solution.assignment(t).path.path_id
            for t in int8_problem.tasks
            if int8_solution.assignment(t).path is not None
        ]
        assert any(p.endswith("-int8") for p in chosen)
        # admitted paths still honor each task's accuracy floor
        for task in int8_problem.tasks:
            path = int8_solution.assignment(task).path
            if path is not None:
                assert path.accuracy >= task.min_accuracy


class TestSmallScale:
    def test_table_iv_parameters(self):
        assert SMALL_SCALE.request_rate == 5.0
        assert SMALL_SCALE.accuracies == (0.9, 0.8, 0.7, 0.6, 0.5)
        assert SMALL_SCALE.priorities == (0.8, 0.7, 0.6, 0.5, 0.4)
        assert SMALL_SCALE.radio_blocks == 50
        assert SMALL_SCALE.memory_gb == 8.0
        assert SMALL_SCALE.compute_budget_s == 2.5

    def test_tasks_constructed_in_priority_order(self):
        tasks = small_scale_tasks(5)
        assert [t.priority for t in tasks] == [0.8, 0.7, 0.6, 0.5, 0.4]
        assert [t.max_latency_s for t in tasks] == [0.2, 0.3, 0.4, 0.5, 0.6]

    def test_problem_has_15_paths_per_task(self):
        problem = small_scale_problem(3)
        # |D| = 3 families x |Pi| = 5 configs
        assert len(problem.catalog.paths_for(1)) == 15

    def test_invalid_task_count(self):
        with pytest.raises(ValueError):
            small_scale_tasks(0)
        with pytest.raises(ValueError):
            small_scale_tasks(6)

    def test_three_dnn_families(self):
        problem = small_scale_problem(1)
        families = {p.dnn_id.split(":")[0] for p in problem.catalog.paths_for(1)}
        assert families == {"rn18", "rn18s", "rn18w"}


class TestLargeScale:
    def test_table_iv_parameters(self):
        assert LARGE_SCALE.num_tasks == 20
        assert LARGE_SCALE.memory_gb == 16.0
        assert LARGE_SCALE.compute_budget_s == 10.0
        assert LARGE_SCALE.radio_blocks == 100

    def test_request_rates(self):
        assert RequestRate.LOW.value == 2.5
        assert RequestRate.MEDIUM.value == 5.0
        assert RequestRate.HIGH.value == 7.5

    def test_accuracy_and_latency_formulas(self):
        assert LARGE_SCALE.accuracy_for(1) == pytest.approx(0.785)
        assert LARGE_SCALE.accuracy_for(20) == pytest.approx(0.5)
        assert LARGE_SCALE.latency_for(1) == pytest.approx(0.22)
        assert LARGE_SCALE.latency_for(20) == pytest.approx(0.6)

    def test_priorities_descend_from_one(self):
        tasks = large_scale_tasks(RequestRate.LOW)
        assert tasks[0].priority == pytest.approx(1.0)
        assert tasks[-1].priority == pytest.approx(0.05)

    def test_problem_has_ten_paths_per_task(self):
        problem = large_scale_problem(RequestRate.LOW)
        assert len(problem.catalog.paths_for(1)) == 10

    def test_many_distinct_dnn_structures(self):
        """Table IV lists |D| = 125; our catalog realizes 100+ distinct
        dynamic structures (per-task fine-tuned variants + base)."""
        problem = large_scale_problem(RequestRate.LOW)
        assert len(problem.catalog.dnn_ids()) >= 100

    def test_rate_affects_tasks_only(self):
        low = large_scale_problem(RequestRate.LOW, seed=0)
        high = large_scale_problem(RequestRate.HIGH, seed=0)
        assert low.tasks[0].request_rate == 2.5
        assert high.tasks[0].request_rate == 7.5
        # same catalog costs
        assert (
            low.catalog.paths_for(1)[0].compute_time_s
            == high.catalog.paths_for(1)[0].compute_time_s
        )
