"""Tests for the HARQ retransmission model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emulator.lte import TTI_S, HarqConfig, LteCell
from repro.radio.slicing import SliceManager


def _cell(harq: HarqConfig | None, rbs: int = 5) -> LteCell:
    mgr = SliceManager(capacity_rbs=100)
    mgr.allocate(1, rbs, 350_000.0)
    return LteCell(slice_manager=mgr, harq=harq)


class TestHarqConfig:
    def test_zero_error_rate_no_overhead(self):
        harq = HarqConfig(tti_error_rate=0.0)
        rng = np.random.default_rng(0)
        assert harq.transmissions_for(100, rng) == 100
        assert harq.expected_overhead() == 1.0

    def test_expected_overhead_geometric_sum(self):
        harq = HarqConfig(tti_error_rate=0.1, max_retransmissions=4)
        # 1 + 0.1 + 0.01 + 0.001 + 0.0001
        assert harq.expected_overhead() == pytest.approx(1.1111, rel=1e-3)

    def test_sampled_overhead_near_expectation(self):
        harq = HarqConfig(tti_error_rate=0.2, max_retransmissions=4, seed=0)
        rng = np.random.default_rng(0)
        total = harq.transmissions_for(20_000, rng)
        assert total / 20_000 == pytest.approx(harq.expected_overhead(), rel=0.02)

    def test_retransmissions_bounded(self):
        harq = HarqConfig(tti_error_rate=0.9, max_retransmissions=2, seed=0)
        rng = np.random.default_rng(0)
        total = harq.transmissions_for(1_000, rng)
        assert total <= 3 * 1_000  # at most 1 + 2 retransmissions per TTI

    def test_validation(self):
        with pytest.raises(ValueError):
            HarqConfig(tti_error_rate=1.0)
        with pytest.raises(ValueError):
            HarqConfig(max_retransmissions=-1)


class TestHarqInCell:
    def test_errors_extend_airtime(self):
        clean = _cell(None)
        noisy = _cell(HarqConfig(tti_error_rate=0.3, seed=1))
        base = clean.transmission_duration(1, 350_000.0)
        samples = [noisy.transmission_duration(1, 350_000.0) for _ in range(5)]
        assert max(samples) > base
        assert all(s >= base for s in samples)

    def test_durations_stay_tti_granular(self):
        noisy = _cell(HarqConfig(tti_error_rate=0.3, seed=2))
        duration = noisy.transmission_duration(1, 350_000.0)
        assert duration / TTI_S == pytest.approx(round(duration / TTI_S))

    def test_deterministic_given_seed(self):
        a = _cell(HarqConfig(tti_error_rate=0.3, seed=5))
        b = _cell(HarqConfig(tti_error_rate=0.3, seed=5))
        for _ in range(3):
            assert a.transmission_duration(1, 350_000.0) == b.transmission_duration(
                1, 350_000.0
            )

    def test_mean_inflation_matches_model(self):
        harq = HarqConfig(tti_error_rate=0.1, max_retransmissions=4, seed=3)
        cell = _cell(harq)
        base = _cell(None).transmission_duration(1, 350_000.0)
        samples = [cell.transmission_duration(1, 350_000.0) for _ in range(200)]
        assert np.mean(samples) / base == pytest.approx(
            harq.expected_overhead(), rel=0.01
        )
