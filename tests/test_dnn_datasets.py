"""Unit tests for the synthetic Table II datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.datasets import (
    BASE_NUM_CLASSES,
    NEW_TASK_CLASSES,
    TABLE_II_GROUPS,
    make_feature_dataset,
    make_image_dataset,
)


class TestTableII:
    def test_sixty_total_categories(self):
        assert BASE_NUM_CLASSES == 60

    def test_group_counts_match_paper(self):
        counts = {g.name: g.num_classes for g in TABLE_II_GROUPS}
        assert counts == {
            "Vehicle": 12,
            "Wild animals": 18,
            "Snakes": 10,
            "Cats": 6,
            "Household Objects": 14,
        }

    def test_examples_present(self):
        examples = {g.example for g in TABLE_II_GROUPS}
        assert {"Bus", "koala", "green snake", "Persian cat", "toaster"} == examples

    def test_new_task_classes(self):
        assert "mushroom" in NEW_TASK_CLASSES
        assert "electric guitar" in NEW_TASK_CLASSES


class TestFeatureDataset:
    def test_shapes(self):
        data = make_feature_dataset(num_classes=6, samples_per_class=10, feature_dim=32)
        assert data.features.shape == (60, 32)
        assert data.labels.shape == (60,)
        assert data.prototypes.shape == (6, 32)

    def test_all_classes_present(self):
        data = make_feature_dataset(num_classes=6, samples_per_class=10)
        assert set(np.unique(data.labels)) == set(range(6))

    def test_separability_controls_margin(self):
        tight = make_feature_dataset(num_classes=4, separability=0.5, seed=0)
        wide = make_feature_dataset(num_classes=4, separability=5.0, seed=0)
        assert np.linalg.norm(wide.prototypes[0]) > np.linalg.norm(tight.prototypes[0])

    def test_split_partitions_samples(self):
        data = make_feature_dataset(num_classes=4, samples_per_class=25)
        train, test = data.split(0.8, seed=0)
        assert len(train.labels) == 80
        assert len(test.labels) == 20

    def test_split_invalid_fraction(self):
        data = make_feature_dataset(num_classes=2, samples_per_class=5)
        with pytest.raises(ValueError):
            data.split(1.0)

    def test_deterministic_given_seed(self):
        a = make_feature_dataset(seed=9, num_classes=3, samples_per_class=4)
        b = make_feature_dataset(seed=9, num_classes=3, samples_per_class=4)
        np.testing.assert_array_equal(a.features, b.features)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            make_feature_dataset(num_classes=1)
        with pytest.raises(ValueError):
            make_feature_dataset(separability=0.0)

    def test_mismatched_lengths_raise(self):
        from repro.dnn.datasets import FeatureDataset

        with pytest.raises(ValueError):
            FeatureDataset(
                features=np.zeros((3, 2)),
                labels=np.zeros(4, dtype=np.int64),
                num_classes=2,
                prototypes=np.zeros((2, 2)),
            )


class TestImageDataset:
    def test_shapes(self):
        data = make_image_dataset(num_classes=3, samples_per_class=2, image_size=8)
        assert data.images.shape == (6, 3, 8, 8)
        assert data.labels.shape == (6,)

    def test_same_class_images_correlated(self):
        data = make_image_dataset(num_classes=2, samples_per_class=4, noise_std=0.1, seed=0)
        imgs = data.images
        same = np.corrcoef(imgs[0].ravel(), imgs[1].ravel())[0, 1]
        diff = np.corrcoef(imgs[0].ravel(), imgs[-1].ravel())[0, 1]
        assert same > diff

    def test_invalid_classes_raise(self):
        with pytest.raises(ValueError):
            make_image_dataset(num_classes=0)
