"""Sensitivity sweeps — beyond the paper's fixed Table IV budgets.

Quantifies where each edge resource starts to bind on the large-scale
scenario, and how admission degrades with finer-grained load than the
paper's three levels.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.report import format_table
from repro.analysis.sweep import (
    sweep_memory_budget,
    sweep_radio_budget,
    sweep_request_rate,
)


def bench_sensitivity_sweeps(benchmark):
    def run():
        return {
            "radio": sweep_radio_budget([20, 40, 60, 80, 100, 140]),
            "memory": sweep_memory_budget([0.5, 1.0, 2.0, 4.0, 8.0, 16.0]),
            "rate": sweep_request_rate([2.0, 4.0, 6.0, 8.0, 10.0, 12.0]),
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    sections = []
    for name, x_label in (("radio", "RB pool"), ("memory", "memory GB"),
                          ("rate", "req/s per task")):
        rows = [
            [p.value, p.weighted_admission, p.admitted_tasks, p.memory_gb,
             p.radio_blocks]
            for p in data[name]
        ]
        sections.append(
            f"sweep over {x_label}:\n"
            + format_table(
                [x_label, "w. admission", "admitted", "memory GB", "RBs"], rows,
                precision=2,
            )
        )
    emit("sensitivity", "Sensitivity sweeps (large scale, OffloaDNN)\n\n"
         + "\n\n".join(sections))

    radio = data["radio"]
    assert radio[0].weighted_admission < radio[-1].weighted_admission
    memory = data["memory"]
    # sharing makes memory non-binding long before the Table IV budget
    assert memory[3].admitted_tasks == memory[-1].admitted_tasks
    rate = data["rate"]
    assert rate[0].weighted_admission > rate[-1].weighted_admission
