"""Multi-core parallel backend — throughput vs process count.

Beyond the paper: the serving runtime's forward passes ran on one core
until :mod:`repro.serving.parallel` added shared-memory weight arenas
and a process pool sharding batches across workers.  This bench
measures the throughput scaling curve (images/s at batch 8 and 32) as
the process count grows, across the Table I ResNet configurations (full
and 80 %-pruned) and MobileNetV2, and verifies that parallel outputs
match serial execution sample for sample.

Scaling is bounded by the physical core budget — the committed numbers
carry the machine's ``cpu_count``/``cpu_affinity`` in the
``environment`` stanza, so a flat curve on a 1-core container is the
honest result, not a regression.  BLAS threads are pinned to 1 in
workers (see ``pin_blas_threads``), so the curve isolates process
scaling.

Results go to ``BENCH_parallel.json`` at the repo root (committed,
machine-readable) plus a text table under ``benchmarks/results/``.
``--quick`` is the CI smoke: one tiny config, 2 processes, parity
asserted, nonzero exit on divergence; exits 0 with a notice where
shared memory is unavailable.
"""

from __future__ import annotations

import argparse
import pathlib
import time

import numpy as np

from benchmarks._report import emit, write_json
from repro.analysis.report import format_table
from repro.dnn.configs import TABLE_I_CONFIGS
from repro.dnn.mobilenet import build_mobilenetv2
from repro.dnn.pruning import prune_resnet
from repro.dnn.resnet import build_resnet18
from repro.serving.parallel import ParallelBackend, shared_memory_available

REPO_ROOT = pathlib.Path(__file__).parent.parent
PARITY_TOL = 1e-6
SEED = 0


def _median_time(fn, x: np.ndarray, repeats: int, warmup: int = 1) -> float:
    for _ in range(warmup):
        fn(x)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn(x)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def _resnet_config_model(name: str, width: int, input_size: int):
    config = TABLE_I_CONFIGS[name]
    model = build_resnet18(
        num_classes=10, input_size=input_size, width=width, seed=SEED
    )
    if config.pruned:
        prune_resnet(model, set(config.prunable_blocks), config.prune_ratio)
    return model


def _models(quick: bool):
    """(label, BlockwiseModel) pairs for the requested scale."""
    if quick:
        return [("CONFIG A", _resnet_config_model("CONFIG A", 8, 16))]
    width, input_size = 32, 32
    pairs = [
        (name, _resnet_config_model(name, width, input_size))
        for name in TABLE_I_CONFIGS
    ]
    pairs.append(
        (
            "MobileNetV2-0.5",
            build_mobilenetv2(
                num_classes=10, input_size=input_size,
                width_multiplier=0.5, seed=SEED,
            ),
        )
    )
    return pairs


def run(quick: bool) -> dict:
    if quick:
        proc_counts, batches, repeats = [1, 2], [8], 3
    else:
        proc_counts, batches, repeats = [1, 2, 4], [8, 32], 5
    rng = np.random.default_rng(SEED)
    rows = []
    for label, model in _models(quick):
        inputs = {
            n: rng.standard_normal((n, *model.input_shape), dtype=np.float32)
            for n in batches
        }
        # serial reference outputs (num_procs=1 backend, compiled plans)
        with ParallelBackend.for_model(model, num_procs=1) as serial:
            reference = {n: serial.run_model(x) for n, x in inputs.items()}
            serial_s = {
                n: _median_time(serial.run_model, x, repeats)
                for n, x in inputs.items()
            }
        for procs in proc_counts:
            if procs == 1:
                backend = None
                times = serial_s
                diffs = {n: 0.0 for n in batches}
                mode = "serial"
            else:
                backend = ParallelBackend.for_model(
                    model, num_procs=procs, min_shard=2
                )
                mode = backend.mode
                times, diffs = {}, {}
                for n, x in inputs.items():
                    diffs[n] = float(
                        np.abs(backend.run_model(x) - reference[n]).max()
                    )
                    times[n] = _median_time(backend.run_model, x, repeats)
                backend.close()
            for n in batches:
                rows.append(
                    {
                        "model": label,
                        "procs": procs,
                        "mode": mode,
                        "batch": n,
                        "wall_ms": times[n] * 1e3,
                        "throughput_ips": n / times[n],
                        "speedup_vs_1proc": serial_s[n] / times[n],
                        "max_abs_diff": diffs[n],
                    }
                )
    return {
        "bench": "bench_parallel",
        "mode": "quick" if quick else "full",
        "settings": {
            "seed": SEED,
            "repeats": repeats,
            "batches": batches,
            "proc_counts": proc_counts,
            "parity_tolerance": PARITY_TOL,
        },
        "results": rows,
        "max_abs_diff": max(r["max_abs_diff"] for r in rows),
        "best_speedup": max(r["speedup_vs_1proc"] for r in rows),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: one tiny config, 2 processes, batch 8",
    )
    args = parser.parse_args()

    if not shared_memory_available():
        print("bench_parallel: shared memory unavailable on this platform; skipping")
        return 0

    report = run(quick=args.quick)
    table = format_table(
        ["model", "procs", "mode", "batch", "wall ms", "img/s", "speedup", "max|diff|"],
        [
            [
                r["model"],
                r["procs"],
                r["mode"],
                r["batch"],
                f"{r['wall_ms']:.2f}",
                f"{r['throughput_ips']:.1f}",
                f"{r['speedup_vs_1proc']:.2f}x",
                f"{r['max_abs_diff']:.1e}",
            ]
            for r in report["results"]
        ],
    )
    summary = (
        f"best speedup vs 1 proc: {report['best_speedup']:.2f}x   "
        f"max parity diff: {report['max_abs_diff']:.1e}"
    )
    name = "BENCH_parallel_quick" if args.quick else "BENCH_parallel"
    emit(name, table + "\n\n" + summary)

    if args.quick:
        json_path = REPO_ROOT / "benchmarks" / "results" / f"{name}.json"
    else:
        json_path = REPO_ROOT / "BENCH_parallel.json"
    write_json(report, json_path)

    if report["max_abs_diff"] >= PARITY_TOL:
        print(
            f"PARITY FAILURE: max|diff| {report['max_abs_diff']:.2e} "
            f">= {PARITY_TOL:.0e}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
