"""Ablation — clique ordering criterion.

The OffloaDNN design sorts vertices within each clique by inference
compute time and takes the first feasible branch; this bench quantifies
what that design choice buys over memory-greedy, accuracy-greedy and
random branch selection on the large-scale scenario.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.report import format_table
from repro.baselines.random_policy import RandomPathSolver
from repro.core.heuristic import OffloaDNNSolver
from repro.core.objective import objective_value
from repro.workloads.largescale import RequestRate, large_scale_problem


def _evaluate(problem, solver):
    solution = solver.solve(problem)
    return {
        "cost": objective_value(problem, solution),
        "inference": solution.total_inference_compute_s,
        "memory": solution.total_memory_gb,
        "admitted": solution.weighted_admission_ratio,
    }


def bench_ablation_clique_ordering(benchmark):
    problem = large_scale_problem(RequestRate.MEDIUM)
    solvers = {
        "compute (paper)": OffloaDNNSolver(ordering="compute"),
        "memory-greedy": OffloaDNNSolver(ordering="memory"),
        "accuracy-greedy": OffloaDNNSolver(ordering="accuracy"),
        "random-branch": RandomPathSolver(seed=0),
    }

    def run():
        return {name: _evaluate(problem, solver) for name, solver in solvers.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, r["cost"], r["inference"], r["memory"], r["admitted"]]
        for name, r in results.items()
    ]
    emit(
        "ablation_ordering",
        "Ablation: clique ordering (large scale, medium rate)\n"
        + format_table(
            ["ordering", "DOT cost", "inference [s]", "memory [GB]", "w. admission"],
            rows,
        ),
    )
    paper = results["compute (paper)"]
    # compute-time ordering minimizes the inference term by construction
    for name, r in results.items():
        assert paper["inference"] <= r["inference"] + 1e-9, name
    # memory-greedy ordering minimizes memory instead
    assert results["memory-greedy"]["memory"] <= paper["memory"] + 1e-9
