"""Fig. 11 — emulated small-scale run: end-to-end latency vs time.

The Colosseum-substitute experiment: the controller admits the 5
small-scale tasks on a 100-RB cell, UEs offload frames for 20 s, and
every task's (moving-average) end-to-end latency must stay within its
target — the paper's operational validation.
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.analysis.figures import fig11_emulation_latency
from repro.analysis.report import format_table


def bench_fig11_emulation_latency(benchmark):
    data = benchmark.pedantic(
        lambda: fig11_emulation_latency(num_tasks=5, duration_s=20.0),
        rounds=1,
        iterations=1,
    )
    rows = []
    for task_id, entry in sorted(data["series"].items()):
        latency = np.asarray(entry["latency_s"], dtype=float)
        rows.append(
            [
                task_id,
                1e3 * float(latency.mean()),
                1e3 * float(latency.max()),
                1e3 * entry["limit_s"],
                len(latency),
            ]
        )
    emit(
        "fig11_emulation",
        "Fig. 11: emulated end-to-end latency (moving average, window 3)\n"
        + format_table(
            ["task", "mean [ms]", "max [ms]", "limit [ms]", "samples"],
            rows,
            precision=1,
        )
        + f"\nall tasks within latency targets: {data['within_limits']}"
        + f"\nDES events processed: {data['events']}",
    )
    assert data["within_limits"]
    assert len(data["series"]) == 5
