"""Fig. 7 — small scale: normalized DOT cost and memory vs the optimum.

The paper: OffloaDNN's cost is indistinguishable from the optimum;
memory is only slightly higher and never above 64% of the 8 GB budget.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.figures import fig7_cost_and_memory
from repro.analysis.report import format_table


def bench_fig7_cost_and_memory(benchmark):
    data = benchmark.pedantic(
        lambda: fig7_cost_and_memory(max_tasks=5),
        rounds=1,
        iterations=1,
    )
    rows = [
        [t, hc, oc, hm, om]
        for t, hc, oc, hm, om in zip(
            data["num_tasks"],
            data["offloadnn_cost"],
            data["optimum_cost"],
            data["offloadnn_memory"],
            data["optimum_memory"],
        )
    ]
    emit(
        "fig7_cost_memory",
        "Fig. 7: normalized DOT cost (left) and normalized memory (right)\n"
        + format_table(
            ["T", "Off. cost", "Opt. cost", "Off. mem", "Opt. mem"], rows
        ),
    )
    for hc, oc in zip(data["offloadnn_cost"], data["optimum_cost"]):
        assert hc <= oc * 1.15 + 1e-9  # heuristic matches the optimum closely
    assert max(data["offloadnn_memory"]) <= 0.64  # paper: at most 64% of M
