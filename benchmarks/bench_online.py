"""Online operation bench — the dynamic-scenario extension in action.

Runs the Poisson-arrival / exponential-lifetime study at three offered
loads and reports the steady-state behaviour: admission fraction,
peak deployed memory and RB usage, clean drain at the end.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.report import format_table
from repro.edge.online import OnlineStudy


def bench_online_operation(benchmark):
    loads = (
        ("light", 0.1, 30.0),
        ("moderate", 0.4, 40.0),
        ("heavy", 1.5, 60.0),
    )

    def run():
        results = {}
        for label, rate, lifetime in loads:
            study = OnlineStudy(
                arrival_rate_per_s=rate,
                mean_lifetime_s=lifetime,
                horizon_s=240.0,
                seed=4,
            )
            results[label] = (study, study.run())
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, (study, trace) in results.items():
        _, memory = trace.series("deployed_memory_gb")
        _, rbs = trace.series("allocated_rbs")
        rows.append(
            [
                label,
                trace.arrivals,
                trace.admission_fraction,
                max(memory),
                max(rbs),
                trace.snapshots[-1].active_tasks,
            ]
        )
    emit(
        "online",
        "Online operation (Poisson arrivals, exponential lifetimes, 240 s)\n"
        + format_table(
            ["load", "arrivals", "admit frac", "peak mem GB", "peak RBs", "left over"],
            rows,
            precision=2,
        ),
    )
    light = results["light"][1]
    heavy = results["heavy"][1]
    assert light.admission_fraction == 1.0
    assert heavy.admission_fraction < 0.5  # RB pool gates heavy load
    for _, trace in results.values():
        assert trace.snapshots[-1].active_tasks == 0  # clean drain