"""Compiled inference engine — eager vs fused-plan forward latency.

Beyond the paper: every compute cost the DOT solver and the serving
runtime consume comes from forwards of the numpy engine.  This bench
measures what the compiled engine (:mod:`repro.dnn.compile` — BN
folding, op fusion, weight pre-layout, buffer arenas) buys over the
eager layer-by-layer forward, across the Table I ResNet configurations
and MobileNetV2 at batch sizes 1/8/32, and verifies numerical parity.

An **int8 section** additionally compares the quantized engine
(:mod:`repro.dnn.quantize` — per-channel symmetric weights, calibrated
activation scales, fused requant) against the fp32 compiled plan on the
Table I ResNet configurations at their paper scale (width 64).  Each
row records the speedup, the top-1 agreement with fp32 on a fixed probe
batch, and whether two int8 runs were bit-identical (determinism).

Results go to ``BENCH_engine.json`` at the repo root (machine-readable,
committed, so later PRs can track the perf trajectory) and a text table
under ``benchmarks/results/``.  ``--quick`` runs a small-shape subset
for CI smoke: it asserts parity and exits nonzero on divergence or
crash, writing ``benchmarks/results/BENCH_engine_quick.json`` instead.
"""

from __future__ import annotations

import argparse
import pathlib
import time

import numpy as np

from benchmarks._report import emit, write_json
from repro.analysis.report import format_table
from repro.dnn.compile import compile_module
from repro.dnn.configs import TABLE_I_CONFIGS
from repro.dnn.mobilenet import build_mobilenetv2
from repro.dnn.pruning import prune_resnet
from repro.dnn.resnet import build_resnet18

REPO_ROOT = pathlib.Path(__file__).parent.parent
PARITY_TOL = 1e-4
#: quantization is lossy; gate on top-1 agreement with fp32 instead of
#: element-wise closeness (measured worst config: 0.88)
INT8_AGREEMENT_TOL = 0.75
SEED = 0


def _median_time(fn, x: np.ndarray, repeats: int, warmup: int = 1) -> float:
    for _ in range(warmup):
        fn(x)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn(x)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def _resnet_config_model(name: str, width: int, input_size: int):
    config = TABLE_I_CONFIGS[name]
    model = build_resnet18(
        num_classes=10, input_size=input_size, width=width, seed=SEED
    )
    if config.pruned:
        prune_resnet(model, set(config.prunable_blocks), config.prune_ratio)
    return model


def _models(quick: bool):
    """(label, BlockwiseModel) pairs for the requested scale."""
    if quick:
        width, input_size = 8, 16
        names = ["CONFIG A", "CONFIG C", "CONFIG C-pruned"]
        mobilenets = [(0.25, 16)]
    else:
        width, input_size = 32, 32
        names = list(TABLE_I_CONFIGS)
        mobilenets = [(0.25, 32), (0.5, 32)]
    pairs = [
        (name, _resnet_config_model(name, width, input_size)) for name in names
    ]
    for mult, size in mobilenets:
        model = build_mobilenetv2(
            num_classes=10, input_size=size, width_multiplier=mult, seed=SEED
        )
        pairs.append((f"MobileNetV2-{mult}", model))
    return pairs


def _int8_models(quick: bool):
    """(label, model, width, input_size) for the int8 vs fp32 section.

    Full mode runs every Table I configuration at the paper's ResNet-18
    width (64): the quantized schemes (Winograd, height-tap GEMMs) are
    shaped for those channel counts, and the ≥1.3x acceptance geomean
    is defined at that scale.  Quick mode runs one tiny config purely
    as a parity/determinism smoke — speedup is recorded, not asserted.
    """
    if quick:
        width, input_size = 8, 16
        names = ["CONFIG A"]
    else:
        width, input_size = 64, 32
        names = list(TABLE_I_CONFIGS)
    return [
        (name, _resnet_config_model(name, width, input_size), width, input_size)
        for name in names
    ]


def run_int8(quick: bool) -> dict:
    """int8 quantized plans vs fp32 compiled plans (same models)."""
    batches = [1, 8] if quick else [1, 8, 32]
    repeats = 3 if quick else 5
    probe_n = 16 if quick else 32
    rng = np.random.default_rng(SEED + 1)
    rows = []
    agreement_by_config = {}
    for label, model, _width, _size in _int8_models(quick):
        compiled = compile_module(model)
        quantized = compile_module(model, quantize="int8")
        probe = rng.standard_normal((probe_n, *model.input_shape), dtype=np.float32)
        ref_top1 = np.argmax(compiled.forward(probe), axis=1)
        q_out = quantized.forward(probe)
        agreement = float(np.mean(np.argmax(q_out, axis=1) == ref_top1))
        bit_identical = bool(np.array_equal(q_out, quantized.forward(probe)))
        agreement_by_config[label] = agreement
        for n in batches:
            x = rng.standard_normal((n, *model.input_shape), dtype=np.float32)
            fp32_s = _median_time(compiled.forward, x, repeats)
            int8_s = _median_time(quantized.forward, x, repeats)
            rows.append(
                {
                    "model": label,
                    "batch": n,
                    "fp32_ms": fp32_s * 1e3,
                    "int8_ms": int8_s * 1e3,
                    "speedup_vs_fp32": fp32_s / int8_s,
                    "top1_agreement": agreement,
                    "bit_identical": bit_identical,
                }
            )
        compiled.release_buffers()
        quantized.release_buffers()
    batch8 = [r["speedup_vs_fp32"] for r in rows if r["batch"] == 8]
    return {
        "settings": {
            "seed": SEED + 1,
            "repeats": repeats,
            "batches": batches,
            "width": 8 if quick else 64,
            "input_size": 16 if quick else 32,
            "probe_batch": probe_n,
            "top1_agreement_tolerance": INT8_AGREEMENT_TOL,
        },
        "results": rows,
        "geomean_speedup_batch8": float(np.exp(np.mean(np.log(batch8)))),
        "top1_agreement_by_config": agreement_by_config,
        "min_top1_agreement": min(agreement_by_config.values()),
        "all_bit_identical": all(r["bit_identical"] for r in rows),
    }


def run(quick: bool) -> dict:
    batches = [1, 8] if quick else [1, 8, 32]
    repeats = 3 if quick else 5
    rng = np.random.default_rng(SEED)
    rows = []
    for label, model in _models(quick):
        eager = model._as_sequential
        compiled = compile_module(model)
        for n in batches:
            x = rng.standard_normal((n, *model.input_shape), dtype=np.float32)
            diff = float(np.abs(eager.forward(x) - compiled.forward(x)).max())
            eager_s = _median_time(eager.forward, x, repeats)
            compiled_s = _median_time(compiled.forward, x, repeats)
            rows.append(
                {
                    "model": label,
                    "batch": n,
                    "eager_ms": eager_s * 1e3,
                    "compiled_ms": compiled_s * 1e3,
                    "speedup": eager_s / compiled_s,
                    "max_abs_diff": diff,
                }
            )
        compiled.release_buffers()
    batch8 = [r["speedup"] for r in rows if r["batch"] == 8]
    return {
        "bench": "bench_engine",
        "mode": "quick" if quick else "full",
        "settings": {
            "seed": SEED,
            "repeats": repeats,
            "batches": batches,
            "parity_tolerance": PARITY_TOL,
        },
        "results": rows,
        "geomean_speedup_batch8": float(np.exp(np.mean(np.log(batch8)))),
        "max_abs_diff": max(r["max_abs_diff"] for r in rows),
        "int8": run_int8(quick),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-shape CI smoke: subset of models, batches 1/8",
    )
    args = parser.parse_args()

    report = run(quick=args.quick)
    table = format_table(
        ["model", "batch", "eager ms", "compiled ms", "speedup", "max|diff|"],
        [
            [
                r["model"],
                r["batch"],
                f"{r['eager_ms']:.2f}",
                f"{r['compiled_ms']:.2f}",
                f"{r['speedup']:.2f}x",
                f"{r['max_abs_diff']:.1e}",
            ]
            for r in report["results"]
        ],
    )
    summary = (
        f"geomean speedup @ batch 8: {report['geomean_speedup_batch8']:.2f}x   "
        f"max parity diff: {report['max_abs_diff']:.1e}"
    )
    int8 = report["int8"]
    int8_table = format_table(
        ["model", "batch", "fp32 ms", "int8 ms", "speedup", "top-1 agree"],
        [
            [
                r["model"],
                r["batch"],
                f"{r['fp32_ms']:.2f}",
                f"{r['int8_ms']:.2f}",
                f"{r['speedup_vs_fp32']:.2f}x",
                f"{r['top1_agreement']:.2f}",
            ]
            for r in int8["results"]
        ],
    )
    int8_summary = (
        f"int8 geomean speedup @ batch 8: "
        f"{int8['geomean_speedup_batch8']:.2f}x   "
        f"min top-1 agreement: {int8['min_top1_agreement']:.2f}   "
        f"bit-identical: {int8['all_bit_identical']}"
    )
    name = "BENCH_engine_quick" if args.quick else "BENCH_engine"
    emit(
        name,
        table + "\n\n" + summary + "\n\nint8 quantized vs fp32 compiled:\n"
        + int8_table + "\n\n" + int8_summary,
    )

    if args.quick:
        json_path = REPO_ROOT / "benchmarks" / "results" / f"{name}.json"
    else:
        json_path = REPO_ROOT / "BENCH_engine.json"
    write_json(report, json_path)

    if report["max_abs_diff"] >= PARITY_TOL:
        print(
            f"PARITY FAILURE: max|diff| {report['max_abs_diff']:.2e} "
            f">= {PARITY_TOL:.0e}"
        )
        return 1
    if int8["min_top1_agreement"] < INT8_AGREEMENT_TOL:
        print(
            f"INT8 PARITY FAILURE: min top-1 agreement "
            f"{int8['min_top1_agreement']:.2f} < {INT8_AGREEMENT_TOL}"
        )
        return 1
    if not int8["all_bit_identical"]:
        print("INT8 DETERMINISM FAILURE: repeated runs not bit-identical")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
