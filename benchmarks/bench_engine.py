"""Compiled inference engine — eager vs fused-plan forward latency.

Beyond the paper: every compute cost the DOT solver and the serving
runtime consume comes from forwards of the numpy engine.  This bench
measures what the compiled engine (:mod:`repro.dnn.compile` — BN
folding, op fusion, weight pre-layout, buffer arenas) buys over the
eager layer-by-layer forward, across the Table I ResNet configurations
and MobileNetV2 at batch sizes 1/8/32, and verifies numerical parity.

Results go to ``BENCH_engine.json`` at the repo root (machine-readable,
committed, so later PRs can track the perf trajectory) and a text table
under ``benchmarks/results/``.  ``--quick`` runs a small-shape subset
for CI smoke: it asserts parity and exits nonzero on divergence or
crash, writing ``benchmarks/results/BENCH_engine_quick.json`` instead.
"""

from __future__ import annotations

import argparse
import pathlib
import time

import numpy as np

from benchmarks._report import emit, write_json
from repro.analysis.report import format_table
from repro.dnn.compile import compile_module
from repro.dnn.configs import TABLE_I_CONFIGS
from repro.dnn.mobilenet import build_mobilenetv2
from repro.dnn.pruning import prune_resnet
from repro.dnn.resnet import build_resnet18

REPO_ROOT = pathlib.Path(__file__).parent.parent
PARITY_TOL = 1e-4
SEED = 0


def _median_time(fn, x: np.ndarray, repeats: int, warmup: int = 1) -> float:
    for _ in range(warmup):
        fn(x)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn(x)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def _resnet_config_model(name: str, width: int, input_size: int):
    config = TABLE_I_CONFIGS[name]
    model = build_resnet18(
        num_classes=10, input_size=input_size, width=width, seed=SEED
    )
    if config.pruned:
        prune_resnet(model, set(config.prunable_blocks), config.prune_ratio)
    return model


def _models(quick: bool):
    """(label, BlockwiseModel) pairs for the requested scale."""
    if quick:
        width, input_size = 8, 16
        names = ["CONFIG A", "CONFIG C", "CONFIG C-pruned"]
        mobilenets = [(0.25, 16)]
    else:
        width, input_size = 32, 32
        names = list(TABLE_I_CONFIGS)
        mobilenets = [(0.25, 32), (0.5, 32)]
    pairs = [
        (name, _resnet_config_model(name, width, input_size)) for name in names
    ]
    for mult, size in mobilenets:
        model = build_mobilenetv2(
            num_classes=10, input_size=size, width_multiplier=mult, seed=SEED
        )
        pairs.append((f"MobileNetV2-{mult}", model))
    return pairs


def run(quick: bool) -> dict:
    batches = [1, 8] if quick else [1, 8, 32]
    repeats = 3 if quick else 5
    rng = np.random.default_rng(SEED)
    rows = []
    for label, model in _models(quick):
        eager = model._as_sequential
        compiled = compile_module(model)
        for n in batches:
            x = rng.standard_normal((n, *model.input_shape), dtype=np.float32)
            diff = float(np.abs(eager.forward(x) - compiled.forward(x)).max())
            eager_s = _median_time(eager.forward, x, repeats)
            compiled_s = _median_time(compiled.forward, x, repeats)
            rows.append(
                {
                    "model": label,
                    "batch": n,
                    "eager_ms": eager_s * 1e3,
                    "compiled_ms": compiled_s * 1e3,
                    "speedup": eager_s / compiled_s,
                    "max_abs_diff": diff,
                }
            )
        compiled.release_buffers()
    batch8 = [r["speedup"] for r in rows if r["batch"] == 8]
    return {
        "bench": "bench_engine",
        "mode": "quick" if quick else "full",
        "settings": {
            "seed": SEED,
            "repeats": repeats,
            "batches": batches,
            "parity_tolerance": PARITY_TOL,
        },
        "results": rows,
        "geomean_speedup_batch8": float(np.exp(np.mean(np.log(batch8)))),
        "max_abs_diff": max(r["max_abs_diff"] for r in rows),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-shape CI smoke: subset of models, batches 1/8",
    )
    args = parser.parse_args()

    report = run(quick=args.quick)
    table = format_table(
        ["model", "batch", "eager ms", "compiled ms", "speedup", "max|diff|"],
        [
            [
                r["model"],
                r["batch"],
                f"{r['eager_ms']:.2f}",
                f"{r['compiled_ms']:.2f}",
                f"{r['speedup']:.2f}x",
                f"{r['max_abs_diff']:.1e}",
            ]
            for r in report["results"]
        ],
    )
    summary = (
        f"geomean speedup @ batch 8: {report['geomean_speedup_batch8']:.2f}x   "
        f"max parity diff: {report['max_abs_diff']:.1e}"
    )
    name = "BENCH_engine_quick" if args.quick else "BENCH_engine"
    emit(name, table + "\n\n" + summary)

    if args.quick:
        json_path = REPO_ROOT / "benchmarks" / "results" / f"{name}.json"
    else:
        json_path = REPO_ROOT / "BENCH_engine.json"
    write_json(report, json_path)

    if report["max_abs_diff"] >= PARITY_TOL:
        print(
            f"PARITY FAILURE: max|diff| {report['max_abs_diff']:.2e} "
            f">= {PARITY_TOL:.0e}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
