"""Serving runtime — throughput and deadline-miss curve vs offered load.

Beyond the paper: the emulation of Fig. 11 validates latency at the
solved operating point; this bench drives the serving runtime across a
range of offered loads (0.5x to 3x the solved ``λ``) and records how
throughput saturates at the granted rate while the admission gate
sheds the excess.  A second table isolates the shared-block prefix
cache: identical runs with fusion on and off, and the simulated GPU
time saved by running the frozen shared trunk once per window.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.report import format_table
from repro.core.heuristic import OffloaDNNSolver
from repro.serving import DropReason, ServingRuntime
from repro.workloads.smallscale import serving_small_scale_problem

LOADS = (0.5, 1.0, 1.5, 2.0, 3.0)
DURATION_S = 10.0
SEED = 0


def _runtime() -> ServingRuntime:
    problem = serving_small_scale_problem(5, seed=SEED)
    return ServingRuntime.from_problem(
        problem, solver=OffloaDNNSolver(slice_margin_rbs=2)
    )


def _load_curve(runtime: ServingRuntime) -> list[list]:
    rows = []
    for load in LOADS:
        metrics = runtime.with_config(
            duration_s=DURATION_S, load_factor=load, seed=SEED
        ).run()
        gated = sum(t.drops[DropReason.ADMISSION] for t in metrics.tasks.values())
        p95 = max(
            t.latency.p95_s for t in metrics.tasks.values() if t.completed > 0
        )
        rows.append(
            [
                load,
                metrics.offered,
                metrics.completed,
                metrics.throughput_rps,
                1e3 * p95,
                metrics.deadline_miss_rate,
                gated,
            ]
        )
    return rows


def bench_serving_load_curve(benchmark):
    runtime = _runtime()
    rows = benchmark.pedantic(lambda: _load_curve(runtime), rounds=1, iterations=1)
    throughputs = [row[3] for row in rows]
    # throughput rises with load until the granted rate, then plateaus
    assert throughputs[1] > throughputs[0]
    assert abs(throughputs[-1] - throughputs[-2]) < 0.1 * throughputs[-2]
    emit(
        "serving_load_curve",
        "Serving runtime: offered load vs throughput and deadline misses\n"
        + format_table(
            ["load x", "offered", "served", "req/s", "worst p95 ms", "miss rate", "gated"],
            rows,
            precision=2,
        ),
    )


def bench_serving_prefix_cache(benchmark):
    runtime = _runtime()

    def compare() -> list[list]:
        rows = []
        for enabled in (True, False):
            metrics = runtime.with_config(
                duration_s=DURATION_S,
                load_factor=2.0,
                seed=SEED,
                prefix_cache=enabled,
            ).run()
            rows.append(
                [
                    "on" if enabled else "off",
                    metrics.completed,
                    metrics.total_compute_s,
                    metrics.compute_saved_s,
                    metrics.prefix_merges,
                ]
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    with_cache, without_cache = rows[0][2], rows[1][2]
    assert with_cache < without_cache
    assert rows[0][1] == rows[1][1]  # same served requests either way
    emit(
        "serving_prefix_cache",
        "Serving runtime: shared-block prefix cache (2x load, 10 s)\n"
        + format_table(
            ["cache", "served", "compute s", "saved s", "merges"], rows, precision=4
        )
        + f"\ncompute reduction: {100 * (1 - with_cache / without_cache):.1f}%",
    )
