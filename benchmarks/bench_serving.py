"""Serving data plane — throughput, scaling to 10⁶ requests, engine parity.

Beyond the paper: the emulation of Fig. 11 validates latency at the
solved operating point; this bench drives the serving runtime across
offered loads and, since the wave engine landed, across *scale*:

1. **Load curve** (legacy table): 0.5x–3x the solved ``λ`` — throughput
   saturates at the granted rate while the admission gate sheds excess.
2. **Prefix cache** (legacy table): identical runs with shared-block
   fusion on and off.
3. **Scale curve**: 10³ → 10⁶ offered requests through the vector
   engine (requests/s of wall time, DES events/s, worst task p95).
4. **Engine comparison**: vector vs scalar at 10⁵ offered — bit-equal
   metrics required, and the vector engine must be ≥ 10x faster.
5. **Cluster wave point**: 10⁴ offered requests streamed through a
   one-node ``ClusterExecutor``, metrics bit-equal to both engines'
   local runs.

Full mode writes ``BENCH_serving.json`` at the repo root (committed);
``--quick`` gates the 10⁴ point under a wall-clock ceiling for CI,
writes ``benchmarks/results/BENCH_serving_quick.json``, and exits
nonzero on any parity or budget failure.
"""

from __future__ import annotations

import argparse
import pathlib
import time

from benchmarks._report import emit, write_json
from repro.analysis.report import format_table
from repro.core.heuristic import OffloaDNNSolver
from repro.serving import DropReason, ServingRuntime
from repro.serving.runtime import ServingConfig
from repro.workloads.smallscale import serving_small_scale_problem

REPO_ROOT = pathlib.Path(__file__).parent.parent
SEED = 3
DURATION_S = 10.0
LOADS = (0.5, 1.0, 1.5, 2.0, 3.0)
#: offered-request targets of the scale curve (reached via load_factor
#: on the small-scale scenario's 25 req/s of solved offered rate)
FULL_TARGETS = (1_000, 10_000, 100_000, 1_000_000)
QUICK_TARGETS = (10_000,)
#: wall ceiling for the --quick 10⁴ gate (generous for a 1-core CI box)
QUICK_WALL_CEILING_S = 30.0
#: required vector-over-scalar speedup at 10⁵ offered (full mode)
SPEEDUP_FLOOR = 10.0
COMPARE_TARGET = 100_000


def _runtime(**overrides) -> ServingRuntime:
    problem = serving_small_scale_problem(5, seed=0)
    return ServingRuntime.from_problem(
        problem,
        ServingConfig(**overrides),
        solver=OffloaDNNSolver(slice_margin_rbs=2),
    )


def _base_rate() -> float:
    runtime = _runtime()
    return sum(
        task.request_rate
        for task in runtime.problem.tasks
        if runtime.tickets[task.task_id].admitted
    )


def _metrics_key(metrics) -> tuple:
    return (
        metrics.duration_s,
        metrics.total_compute_s,
        metrics.windows,
        tuple(
            (
                tid,
                t.offered,
                t.admitted,
                t.completed,
                t.deadline_misses,
                tuple(sorted((r.value, c) for r, c in t.drops.items())),
                (t.latency.mean_s, t.latency.p50_s, t.latency.p95_s,
                 t.latency.p99_s, t.latency.max_s),
            )
            for tid, t in sorted(metrics.tasks.items())
        ),
    )


def load_curve() -> list[dict]:
    rows = []
    for load in LOADS:
        runtime = _runtime(duration_s=DURATION_S, load_factor=load, seed=0)
        metrics = runtime.run()
        gated = sum(t.drops[DropReason.ADMISSION] for t in metrics.tasks.values())
        p95 = max(
            t.latency.p95_s for t in metrics.tasks.values() if t.completed > 0
        )
        rows.append(
            {
                "load": load,
                "offered": metrics.offered,
                "completed": metrics.completed,
                "throughput_rps": metrics.throughput_rps,
                "worst_p95_ms": 1e3 * p95,
                "miss_rate": metrics.deadline_miss_rate,
                "gated": gated,
            }
        )
    return rows


def prefix_cache() -> list[dict]:
    rows = []
    for enabled in (True, False):
        runtime = _runtime(
            duration_s=DURATION_S, load_factor=2.0, seed=0, prefix_cache=enabled
        )
        metrics = runtime.run()
        rows.append(
            {
                "cache": "on" if enabled else "off",
                "completed": metrics.completed,
                "compute_s": metrics.total_compute_s,
                "saved_s": metrics.compute_saved_s,
                "merges": metrics.prefix_merges,
            }
        )
    return rows


def _scale_run(target: int, engine: str) -> dict:
    load = target / (_base_rate() * DURATION_S)
    runtime = _runtime(
        engine=engine,
        duration_s=DURATION_S,
        load_factor=load,
        poisson=True,
        seed=SEED,
    )
    start = time.perf_counter()
    metrics = runtime.run()
    wall_s = time.perf_counter() - start
    served = [t for t in metrics.tasks.values() if t.completed > 0]
    return {
        "engine": engine,
        "target": target,
        "offered": metrics.offered,
        "completed": metrics.completed,
        "wall_s": wall_s,
        "requests_per_s": metrics.offered / wall_s,
        "events_per_s": runtime.simulator.events_processed / wall_s,
        "events": runtime.simulator.events_processed,
        "worst_p95_ms": (
            1e3 * max(t.latency.p95_s for t in served) if served else None
        ),
        "metrics_key": _metrics_key(metrics),
    }


def scale_curve(targets) -> list[dict]:
    rows = []
    for target in targets:
        row = _scale_run(target, "vector")
        row.pop("metrics_key")
        rows.append(row)
    return rows


def engine_comparison(target: int) -> dict:
    vector = _scale_run(target, "vector")
    scalar = _scale_run(target, "scalar")
    return {
        "target": target,
        "offered": vector["offered"],
        "vector_wall_s": vector["wall_s"],
        "scalar_wall_s": scalar["wall_s"],
        "speedup": scalar["wall_s"] / vector["wall_s"],
        "bit_equal": vector["metrics_key"] == scalar["metrics_key"],
    }


def cluster_wave_point(target: int) -> dict:
    """Stream a 10⁴-offered wave through a one-node cluster fabric."""
    from repro.cluster import ClusterDeployment, default_topology

    load = target / (_base_rate() * DURATION_S)
    keys = {}
    walls = {}
    for engine in ("vector", "scalar"):
        runtime = _runtime(
            engine=engine,
            duration_s=DURATION_S,
            load_factor=load,
            poisson=True,
            seed=SEED,
        )
        runtime.cluster = ClusterDeployment.place(
            runtime.problem, runtime.solution, runtime.tickets, default_topology(1)
        )
        start = time.perf_counter()
        metrics = runtime.run()
        walls[engine] = time.perf_counter() - start
        keys[engine] = _metrics_key(metrics)
    return {
        "target": target,
        "nodes": 1,
        "vector_wall_s": walls["vector"],
        "scalar_wall_s": walls["scalar"],
        "bit_equal": keys["vector"] == keys["scalar"],
    }


def run(quick: bool) -> dict:
    targets = QUICK_TARGETS if quick else FULL_TARGETS
    scaling = scale_curve(targets)
    comparison = engine_comparison(
        QUICK_TARGETS[0] if quick else COMPARE_TARGET
    )
    cluster = cluster_wave_point(10_000)
    report = {
        "bench": "bench_serving",
        "mode": "quick" if quick else "full",
        "settings": {
            "seed": SEED,
            "duration_s": DURATION_S,
            "targets": list(targets),
            "poisson": True,
            "speedup_floor": SPEEDUP_FLOOR,
            "quick_wall_ceiling_s": QUICK_WALL_CEILING_S,
        },
        "load_curve": load_curve(),
        "prefix_cache": prefix_cache(),
        "scaling": scaling,
        "engine_comparison": comparison,
        "cluster": cluster,
    }
    gate_ok = comparison["bit_equal"] and cluster["bit_equal"]
    if quick:
        gate_ok = gate_ok and all(
            row["wall_s"] <= QUICK_WALL_CEILING_S for row in scaling
        )
    else:
        gate_ok = gate_ok and comparison["speedup"] >= SPEEDUP_FLOOR
    report["gate_ok"] = gate_ok
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 10⁴-offered gate under a wall ceiling",
    )
    args = parser.parse_args()
    report = run(quick=args.quick)

    load_table = format_table(
        ["load x", "offered", "served", "req/s", "worst p95 ms", "miss rate", "gated"],
        [
            [r["load"], r["offered"], r["completed"],
             f"{r['throughput_rps']:.2f}", f"{r['worst_p95_ms']:.2f}",
             f"{r['miss_rate']:.3f}", r["gated"]]
            for r in report["load_curve"]
        ],
    )
    cache_rows = report["prefix_cache"]
    cache_table = format_table(
        ["cache", "served", "compute s", "saved s", "merges"],
        [
            [r["cache"], r["completed"], f"{r['compute_s']:.4f}",
             f"{r['saved_s']:.4f}", r["merges"]]
            for r in cache_rows
        ],
    )
    scale_table = format_table(
        ["offered", "served", "wall s", "req/s", "events/s", "worst p95 ms"],
        [
            [r["offered"], r["completed"], f"{r['wall_s']:.3f}",
             f"{r['requests_per_s']:,.0f}", f"{r['events_per_s']:,.0f}",
             "-" if r["worst_p95_ms"] is None else f"{r['worst_p95_ms']:.2f}"]
            for r in report["scaling"]
        ],
    )
    cmp = report["engine_comparison"]
    clu = report["cluster"]
    lines = (
        f"engine comparison @ {cmp['offered']} offered: vector "
        f"{cmp['vector_wall_s']:.3f} s vs scalar {cmp['scalar_wall_s']:.3f} s "
        f"({cmp['speedup']:.1f}x, bit equal {cmp['bit_equal']})\n"
        f"cluster wave point @ {clu['target']} offered, {clu['nodes']} node: "
        f"vector {clu['vector_wall_s']:.3f} s vs scalar "
        f"{clu['scalar_wall_s']:.3f} s (bit equal {clu['bit_equal']})"
    )
    name = "BENCH_serving_quick" if args.quick else "BENCH_serving"
    emit(
        name,
        "Serving runtime: offered load vs throughput and deadline misses\n"
        + load_table
        + "\n\nShared-block prefix cache (2x load, 10 s)\n"
        + cache_table
        + "\n\nScale curve (vector engine, Poisson arrivals)\n"
        + scale_table
        + "\n\n"
        + lines,
    )
    if args.quick:
        json_path = REPO_ROOT / "benchmarks" / "results" / f"{name}.json"
    else:
        json_path = REPO_ROOT / "BENCH_serving.json"
    write_json(report, json_path)

    if not report["gate_ok"]:
        print("GATE FAILURE: see the report above")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
