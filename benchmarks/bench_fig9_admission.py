"""Fig. 9 — large scale: per-task admission ratio vs SEM-O-RAN.

The paper: at low rate OffloaDNN admits all 20 tasks (SEM-O-RAN 16); at
medium ~all (SEM-O-RAN 16); at high the top-priority tasks keep ratio
1, the next ones degrade gracefully, the last are rejected, while
SEM-O-RAN admits only 13 all-or-nothing.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.figures import fig9_admission_ratios
from repro.analysis.report import format_series


def bench_fig9_admission_ratios(benchmark):
    data = benchmark.pedantic(lambda: fig9_admission_ratios(), rounds=1, iterations=1)
    lines = ["Fig. 9: admission ratio per task (ids 1..20)"]
    for rate in ("low", "medium", "high"):
        series = data[rate]
        lines.append(f"[{rate} request rate]")
        lines.append(format_series("  OffloaDNN", series["offloadnn"], precision=2))
        lines.append(format_series("  SEM-O-RAN", series["semoran"], precision=2))
    emit("fig9_admission", "\n".join(lines))

    assert all(z == 1.0 for z in data["low"]["offloadnn"])
    assert sum(data["low"]["semoran"]) == 16
    assert sum(1 for z in data["medium"]["offloadnn"] if z >= 0.99) >= 19
    high = data["high"]["offloadnn"]
    assert all(z == 1.0 for z in high[:10])
    assert high[-1] == 0.0
    assert sum(data["high"]["semoran"]) <= 13
