"""Headline comparison — the paper's abstract-level numbers.

Paper: vs SEM-O-RAN, OffloaDNN admits 26.9% more offloaded tasks while
saving 82.5% memory, 77.4% per-inference compute time and 4.4% radio
resources (averaged over the three request rates).
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.figures import headline_comparison
from repro.analysis.report import format_table

PAPER = {
    "admitted_tasks_gain_pct": 26.9,
    "memory_saving_pct": 82.5,
    "inference_compute_saving_pct": 77.4,
    "radio_saving_pct": 4.4,
}


def bench_headline_comparison(benchmark):
    measured = benchmark.pedantic(lambda: headline_comparison(), rounds=1, iterations=1)
    rows = [
        [metric, PAPER[metric], measured[metric]]
        for metric in PAPER
    ]
    emit(
        "headline",
        "Headline: OffloaDNN vs SEM-O-RAN (average over low/medium/high)\n"
        + format_table(["metric", "paper", "measured"], rows, precision=1),
    )
    assert 15.0 < measured["admitted_tasks_gain_pct"] < 40.0
    assert 70.0 < measured["memory_saving_pct"] < 95.0
    assert 65.0 < measured["inference_compute_saving_pct"] < 90.0
    assert measured["radio_saving_pct"] > 0.0
