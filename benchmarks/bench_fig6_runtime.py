"""Fig. 6 — solver runtime: OffloaDNN vs the optimum, T = 1..5.

The paper reports the optimum over an order of magnitude slower already
at T > 1, growing exponentially, while OffloaDNN stays flat.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.figures import fig6_runtime_comparison
from repro.analysis.report import format_table


def bench_fig6_runtime_comparison(benchmark):
    data = benchmark.pedantic(
        lambda: fig6_runtime_comparison(max_tasks=5),
        rounds=1,
        iterations=1,
    )
    rows = [
        [t, h, o, o / h]
        for t, h, o in zip(data["num_tasks"], data["offloadnn_s"], data["optimum_s"])
    ]
    emit(
        "fig6_runtime",
        "Fig. 6: average runtime [s] vs number of inference tasks\n"
        + format_table(
            ["T", "OffloaDNN [s]", "Optimum [s]", "slowdown"], rows, precision=4
        ),
    )
    # the published relationship: >= 10x gap for every T >= 2
    for t, h, o in zip(data["num_tasks"], data["offloadnn_s"], data["optimum_s"]):
        if t >= 2:
            assert o > 10 * h
