"""Fig. 8 — small scale: the four cost-breakdown panels vs the optimum.

Panels: priority-weighted admission ratio (identical to the optimum),
normalized RBs (identical), training compute (OffloaDNN slightly
higher — the price of first-branch selection), inference compute
(OffloaDNN not above the optimum, thanks to compute-time ordering).
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.figures import fig8_cost_breakdown
from repro.analysis.report import format_table


def bench_fig8_cost_breakdown(benchmark):
    data = benchmark.pedantic(
        lambda: fig8_cost_breakdown(max_tasks=5),
        rounds=1,
        iterations=1,
    )
    rows = []
    for i, t in enumerate(data["num_tasks"]):
        rows.append(
            [
                t,
                data["offloadnn_weighted_admission"][i],
                data["optimum_weighted_admission"][i],
                data["offloadnn_rb_fraction"][i],
                data["optimum_rb_fraction"][i],
                data["offloadnn_training"][i],
                data["optimum_training"][i],
                data["offloadnn_inference"][i],
                data["optimum_inference"][i],
            ]
        )
    emit(
        "fig8_breakdown",
        "Fig. 8: cost breakdown, OffloaDNN vs optimum (T = 1..5)\n"
        + format_table(
            [
                "T",
                "Off. w.adm",
                "Opt. w.adm",
                "Off. RB",
                "Opt. RB",
                "Off. train",
                "Opt. train",
                "Off. inf",
                "Opt. inf",
            ],
            rows,
        ),
    )
    for i in range(len(data["num_tasks"])):
        assert (
            abs(
                data["offloadnn_weighted_admission"][i]
                - data["optimum_weighted_admission"][i]
            )
            < 1e-6
        )
        assert (
            data["offloadnn_inference"][i] <= data["optimum_inference"][i] + 1e-9
        )
        assert (
            data["offloadnn_training"][i] >= data["optimum_training"][i] - 1e-9
        )
