"""Fig. 10 — large scale: the four resource panels vs SEM-O-RAN.

Panels per request rate (low/medium/high): priority-weighted admission,
normalized allocated RBs, normalized total memory, normalized inference
compute.  Also reproduces the in-text DOT cost and training-compute
series for OffloaDNN.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.figures import fig10_largescale_comparison
from repro.analysis.report import format_table


def bench_fig10_largescale_comparison(benchmark):
    data = benchmark.pedantic(
        lambda: fig10_largescale_comparison(), rounds=1, iterations=1
    )
    rows = []
    for rate in ("low", "medium", "high"):
        d = data[rate]
        rows.append(
            [
                rate,
                d["offloadnn_weighted_admission"],
                d["semoran_weighted_admission"],
                d["offloadnn_rb_fraction"],
                d["semoran_rb_fraction"],
                d["offloadnn_memory_fraction"],
                d["semoran_memory_fraction"],
                d["offloadnn_inference_fraction"],
                d["semoran_inference_fraction"],
            ]
        )
    lines = [
        "Fig. 10: large-scale comparison vs SEM-O-RAN",
        format_table(
            [
                "rate",
                "Off. w.adm",
                "SEM w.adm",
                "Off. RB",
                "SEM RB",
                "Off. mem",
                "SEM mem",
                "Off. inf",
                "SEM inf",
            ],
            rows,
        ),
        "",
        "In-text series (OffloaDNN): DOT cost "
        + str([round(data[r]["offloadnn_dot_cost"], 2) for r in ("low", "medium", "high")])
        + ", training compute "
        + str(
            [
                round(data[r]["offloadnn_training_fraction"], 2)
                for r in ("low", "medium", "high")
            ]
        )
        + "  (paper: [0.35, 0.44, 0.74] and [0.81, 0.81, 0.67])",
    ]
    emit("fig10_largescale", "\n".join(lines))

    for rate in ("low", "medium", "high"):
        d = data[rate]
        assert d["offloadnn_weighted_admission"] >= d["semoran_weighted_admission"] - 1e-9
        assert d["offloadnn_memory_fraction"] < 0.3 * d["semoran_memory_fraction"]
        assert d["offloadnn_inference_fraction"] < 0.35 * d["semoran_inference_fraction"]
    # memory: equal at low/medium, lower at high (rejections free blocks)
    assert data["low"]["offloadnn_memory_fraction"] == data["medium"]["offloadnn_memory_fraction"]
    assert data["high"]["offloadnn_memory_fraction"] < data["low"]["offloadnn_memory_fraction"]
    # training compute mirrors memory: constant, then lower at high rate
    assert (
        data["high"]["offloadnn_training_fraction"]
        < data["low"]["offloadnn_training_fraction"]
    )
    # DOT cost rises with the request rate
    costs = [data[r]["offloadnn_dot_cost"] for r in ("low", "medium", "high")]
    assert costs[0] < costs[1] < costs[2]
