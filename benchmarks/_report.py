"""Shared reporting for the benchmark harness.

Every bench regenerates one paper artifact (a table or figure) and both
prints its rows and writes them under ``benchmarks/results/`` so the
paper-vs-measured record in EXPERIMENTS.md can be refreshed from a
single run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a report and persist it to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
