"""Shared reporting for the benchmark harness.

Every bench regenerates one paper artifact (a table or figure) and both
prints its rows and writes them under ``benchmarks/results/`` so the
paper-vs-measured record in EXPERIMENTS.md can be refreshed from a
single run.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a report and persist it to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def _blas_info() -> dict:
    """Best-effort numpy BLAS backend description (API varies by version)."""
    import numpy as np

    try:  # numpy >= 1.26 ships threadpoolctl-style introspection
        info = np.show_config(mode="dicts")  # type: ignore[call-arg]
        blas = info.get("Build Dependencies", {}).get("blas", {})
        return {"name": blas.get("name"), "version": blas.get("version")}
    except Exception:
        return {"name": None, "version": None}


def environment() -> dict:
    """Machine/runtime metadata stamped into every benchmark JSON.

    Perf numbers are meaningless without the machine: this records the
    CPU budget (count + affinity), the BLAS/OpenMP thread pinning in
    effect, and interpreter/numpy versions, so committed benchmark
    files are comparable across hosts and across PRs.
    """
    import numpy as np

    from repro.serving.parallel import BLAS_THREAD_VARS

    try:
        affinity = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        affinity = None
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "cpu_affinity": affinity,
        "blas": _blas_info(),
        "blas_thread_env": {var: os.environ.get(var) for var in BLAS_THREAD_VARS},
    }


def write_json(report: dict, path: pathlib.Path) -> None:
    """Write a benchmark report with environment metadata attached."""
    report = dict(report)
    report.setdefault("environment", environment())
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {path}")


def attach_obs(report: dict, obs) -> dict:
    """Embed an :class:`repro.obs.ObsSession`'s phase breakdown.

    Benches that run under a session call this before :func:`write_json`
    so the committed ``BENCH_*.json`` carries where the time went
    (per-phase span totals) next to the headline numbers.
    """
    report["phases"] = obs.phase_breakdown()
    report["span_count"] = obs.span_count
    return report
