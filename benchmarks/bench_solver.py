"""Control-plane scaling — solver runtime and parity from 20 to 10⁶ tasks.

Three measurements back the vectorized DOT control plane:

1. **Parity at paper scale.**  The vector engine must return the exact
   solution of the scalar reference — same chosen paths, bit-identical
   ``(z, r)`` — on the Table IV large-scale scenario at all three
   request loads.  Any divergence fails the bench.
2. **Solve time vs population.**  Replicated large-scale instances
   (20 service classes × N replicas) are solved with the aggregation
   layer up to 10⁶ modeled users, with the direct per-task vector
   engine as reference where tractable and the scalar engine below
   that.  Aggregated and direct solves are checked for admission
   equivalence.
3. **Warm-start churn.**  At 10⁴ tasks, a 1% arrival/departure churn is
   re-solved with the clique cache versus from scratch; the speedup is
   recorded.

Full mode writes ``BENCH_solver.json`` at the repo root (committed);
``--quick`` runs a reduced grid for CI smoke, writes
``benchmarks/results/BENCH_solver_quick.json`` and exits nonzero on any
parity failure.
"""

from __future__ import annotations

import argparse
import pathlib
import time
from dataclasses import replace

from benchmarks._report import emit, write_json
from repro.analysis.report import format_table
from repro.core.aggregate import AggregateSolver
from repro.core.catalog import Catalog
from repro.core.heuristic import OffloaDNNSolver
from repro.core.incremental import WarmStartSolver
from repro.core.problem import DOTProblem
from repro.workloads.largescale import (
    RequestRate,
    replicated_large_scale_problem,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent
SEED = 0

#: population sizes (modeled users = tasks) of the scaling curve
FULL_USERS = [100, 1_000, 10_000, 100_000, 1_000_000]
QUICK_USERS = [100, 1_000]
#: largest population solved per-task with the vector/scalar engines
DIRECT_CAP = 100_000
SCALAR_CAP = 10_000
#: admission-equivalence tolerance between aggregated and direct solves
EQUIV_RTOL = 0.02


def _solution_key(solution):
    return [
        (
            tid,
            a.path.path_id if a.path else None,
            a.admission_ratio,
            a.radio_blocks,
        )
        for tid, a in sorted(solution.assignments.items())
    ]


def paper_scale_parity() -> list[dict]:
    """Bit-exact scalar-vs-vector parity on the Table IV scenario."""
    from repro.workloads.largescale import large_scale_problem

    rows = []
    for rate in RequestRate:
        problem = large_scale_problem(rate, seed=SEED)
        scalar = OffloaDNNSolver(engine="scalar").solve(problem)
        vector = OffloaDNNSolver(engine="vector").solve(problem)
        rows.append(
            {
                "rate": rate.label,
                "tasks": len(problem.tasks),
                "bit_exact": _solution_key(scalar) == _solution_key(vector),
                "scalar_total_s": scalar.total_time_s,
                "vector_total_s": vector.total_time_s,
                "weighted_admission": vector.weighted_admission_ratio,
            }
        )
    return rows


def scaling_curve(users_grid: list[int]) -> list[dict]:
    rows = []
    for users in users_grid:
        replicas = max(1, users // 20)
        problem = replicated_large_scale_problem(
            RequestRate.MEDIUM, replicas, seed=SEED
        )
        solver = AggregateSolver()
        start = time.perf_counter()
        aggregated = solver.solve(problem)
        agg_wall_s = time.perf_counter() - start
        assert solver.last_plan is not None
        row = {
            "users": len(problem.tasks),
            "groups": solver.last_plan.num_groups,
            "aggregate_total_s": aggregated.total_time_s,
            "aggregate_wall_s": agg_wall_s,
            "weighted_admission": aggregated.weighted_admission_ratio,
            "admitted_tasks": aggregated.admitted_task_count,
            "direct_vector_s": None,
            "scalar_s": None,
            "admission_equivalent": None,
        }
        if len(problem.tasks) <= DIRECT_CAP:
            direct = OffloaDNNSolver(engine="vector").solve(problem)
            row["direct_vector_s"] = direct.total_time_s
            ref = direct.weighted_admission_ratio
            delta = abs(aggregated.weighted_admission_ratio - ref)
            row["admission_equivalent"] = bool(
                delta <= EQUIV_RTOL * max(1.0, abs(ref))
            )
        if len(problem.tasks) <= SCALAR_CAP:
            scalar = OffloaDNNSolver(engine="scalar").solve(problem)
            row["scalar_s"] = scalar.total_time_s
        rows.append(row)
    return rows


def _churned(problem: DOTProblem, fraction: float):
    """Replace the last ``fraction`` of tasks with fresh arrivals."""
    tasks = list(problem.tasks)
    count = max(1, int(len(tasks) * fraction))
    survivors, victims = tasks[:-count], tasks[-count:]
    next_id = max(t.task_id for t in tasks) + 1
    catalog = Catalog()
    catalog.paths_by_task = dict(problem.catalog.paths_by_task)
    arrivals = []
    for offset, victim in enumerate(victims):
        arrival = replace(
            victim, task_id=next_id + offset, name=f"arrival-{next_id + offset}"
        )
        catalog.paths_by_task[arrival.task_id] = problem.catalog.paths_by_task[
            victim.task_id
        ]
        arrivals.append(arrival)
    churned = DOTProblem(
        tasks=tuple(survivors + arrivals),
        catalog=catalog,
        budgets=problem.budgets,
        radio=problem.radio,
        alpha=problem.alpha,
    )
    return churned, [v.task_id for v in victims]


def _deshared(problem: DOTProblem) -> DOTProblem:
    """Give every task its own path-tuple object.

    Replicated instances share candidate-path tuples by identity, which
    lets ``build_vector_tree``'s clique memo collapse the cold build to
    O(distinct classes).  De-sharing models a heterogeneous population
    where that memo cannot hit, isolating the warm-start cache's value.
    """
    catalog = Catalog()
    catalog.paths_by_task = {
        tid: tuple(list(paths))
        for tid, paths in problem.catalog.paths_by_task.items()
    }
    return DOTProblem(
        tasks=problem.tasks,
        catalog=catalog,
        budgets=problem.budgets,
        radio=problem.radio,
        alpha=problem.alpha,
    )


def warm_start_churn(
    users: int, churn_fraction: float = 0.01, heterogeneous: bool = False
) -> dict:
    problem = replicated_large_scale_problem(
        RequestRate.MEDIUM, max(1, users // 20), seed=SEED
    )
    if heterogeneous:
        problem = _deshared(problem)
    warm = WarmStartSolver()
    warm.solve(problem)  # populate the clique cache
    churned, departed = _churned(problem, churn_fraction)
    for task_id in departed:
        warm.forget(task_id)

    start = time.perf_counter()
    warm_solution = warm.solve(churned)
    warm_wall_s = time.perf_counter() - start
    start = time.perf_counter()
    cold_solution = OffloaDNNSolver(engine="vector").solve(churned)
    cold_wall_s = time.perf_counter() - start
    return {
        "users": len(problem.tasks),
        "population": "heterogeneous" if heterogeneous else "replicated",
        "churned_tasks": len(departed),
        "cliques_reused": warm.last_reused,
        "cliques_rebuilt": warm.last_built,
        "warm_resolve_s": warm_wall_s,
        "cold_resolve_s": cold_wall_s,
        "speedup": cold_wall_s / warm_wall_s if warm_wall_s > 0 else None,
        "bit_exact": _solution_key(warm_solution) == _solution_key(cold_solution),
    }


def run(quick: bool) -> dict:
    parity = paper_scale_parity()
    scaling = scaling_curve(QUICK_USERS if quick else FULL_USERS)
    churn_users = 1_000 if quick else 10_000
    warm = [
        warm_start_churn(churn_users, heterogeneous=False),
        warm_start_churn(churn_users, heterogeneous=True),
    ]
    parity_ok = (
        all(r["bit_exact"] for r in parity)
        and all(r["admission_equivalent"] is not False for r in scaling)
        and all(w["bit_exact"] for w in warm)
    )
    return {
        "bench": "bench_solver",
        "mode": "quick" if quick else "full",
        "settings": {
            "seed": SEED,
            "users_grid": QUICK_USERS if quick else FULL_USERS,
            "direct_cap": DIRECT_CAP,
            "scalar_cap": SCALAR_CAP,
            "equivalence_rtol": EQUIV_RTOL,
            "churn_fraction": 0.01,
        },
        "paper_scale_parity": parity,
        "scaling": scaling,
        "warm_start": warm,
        "parity_ok": parity_ok,
    }


def _fmt_s(value) -> str:
    return "-" if value is None else f"{value:.4f}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: populations 100/1000, 1000-task churn",
    )
    args = parser.parse_args()

    report = run(quick=args.quick)

    parity_table = format_table(
        ["rate", "tasks", "bit exact", "scalar s", "vector s"],
        [
            [
                r["rate"],
                r["tasks"],
                str(r["bit_exact"]),
                f"{r['scalar_total_s']:.4f}",
                f"{r['vector_total_s']:.4f}",
            ]
            for r in report["paper_scale_parity"]
        ],
    )
    scale_table = format_table(
        ["users", "groups", "aggregate s", "direct s", "scalar s", "w.adm"],
        [
            [
                r["users"],
                r["groups"],
                _fmt_s(r["aggregate_total_s"]),
                _fmt_s(r["direct_vector_s"]),
                _fmt_s(r["scalar_s"]),
                f"{r['weighted_admission']:.2f}",
            ]
            for r in report["scaling"]
        ],
    )
    warm_lines = []
    for warm in report["warm_start"]:
        warm_lines.append(
            f"warm-start churn @ {warm['users']} {warm['population']} tasks: "
            f"{warm['warm_resolve_s']:.4f} s vs cold "
            f"{warm['cold_resolve_s']:.4f} s "
            f"({warm['speedup']:.1f}x, reused {warm['cliques_reused']} "
            f"cliques, bit exact {warm['bit_exact']})"
        )
    warm_line = "\n".join(warm_lines)
    name = "BENCH_solver_quick" if args.quick else "BENCH_solver"
    emit(name, parity_table + "\n\n" + scale_table + "\n\n" + warm_line)

    if args.quick:
        json_path = REPO_ROOT / "benchmarks" / "results" / f"{name}.json"
    else:
        json_path = REPO_ROOT / "BENCH_solver.json"
    write_json(report, json_path)

    if not report["parity_ok"]:
        print("PARITY FAILURE: see the report above")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
