"""Ablation — subproblem solver: structured exact vs SLSQP.

The per-branch (z, r) program is convex; the paper notes any convex
optimizer works.  This bench compares the structured solver (used by
both OffloaDNN and the optimum here) against scipy SLSQP on the same
branch, in solution quality and speed.
"""

from __future__ import annotations

import time

from benchmarks._report import emit
from repro.analysis.report import format_table
from repro.core.subproblem import BranchItem, solve_branch, solve_branch_convex
from repro.core.tree import build_tree
from repro.workloads.largescale import RequestRate, large_scale_problem


def _branch_items(problem):
    tree = build_tree(problem)
    return [
        BranchItem(
            task=c.task, path=c.vertices[0].path, bits_per_rb=c.vertices[0].bits_per_rb
        )
        for c in tree.cliques
        if c.vertices
    ]


def bench_ablation_subproblem_solvers(benchmark):
    problem = large_scale_problem(RequestRate.HIGH)
    items = _branch_items(problem)

    def run():
        t0 = time.perf_counter()
        structured = solve_branch(items, problem.budgets)
        t_structured = time.perf_counter() - t0
        t0 = time.perf_counter()
        convex = solve_branch_convex(items, problem.budgets, alpha=problem.alpha)
        t_convex = time.perf_counter() - t0
        return structured, convex, t_structured, t_convex

    structured, convex, t_structured, t_convex = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    w_structured = sum(
        z * it.task.priority for z, it in zip(structured.admission, items)
    )
    w_convex = sum(z * it.task.priority for z, it in zip(convex.admission, items))
    rows = [
        ["structured (exact)", w_structured, t_structured * 1e3],
        ["scipy SLSQP", w_convex, t_convex * 1e3],
    ]
    emit(
        "ablation_solvers",
        "Ablation: per-branch (z, r) solver (large scale, high rate)\n"
        + format_table(["solver", "weighted admission", "time [ms]"], rows),
    )
    # the structured solver admits at least as much, at lower runtime
    assert w_structured >= w_convex - 1e-6
