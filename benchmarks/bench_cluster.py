"""Cluster fabric — served rate and p95 latency vs node count.

Beyond the paper: OffloaDNN solves *what* to serve (paths, admission,
slices) for one edge server; :mod:`repro.cluster` asks what happens
when the same solved allocation is *placed* across several logical
nodes.  This bench sweeps a homogeneous edge mesh of {1, 2, 4} nodes
(single worker each) and reports, per node count:

* served requests and served rate (req/s) — must not regress vs the
  single node, since the admission gate upstream is identical;
* worst-task p95 latency — splitting paths trades transfer time on the
  activation boundary against parallel segment execution;
* split paths, bytes streamed over links, and mean node utilization
  (clamped busy-window accounting).

The bench also asserts the two fabric invariants the PR promises:

1. a 1-node cluster reproduces the plain ``BatchExecutor`` metrics
   bit-identically, and
2. two identical 3-node runs produce byte-identical virtual-clock
   span logs (DES determinism across the wire layer).

Exits nonzero if either invariant breaks.  ``--quick`` runs a 3-node
2 s smoke (for CI) and writes a Chrome trace that the workflow round-
trips through ``repro trace-summary``.
"""

from __future__ import annotations

import argparse
import pathlib

from benchmarks._report import emit, write_json
from repro.analysis.report import format_table
from repro.cluster import ClusterDeployment, default_topology
from repro.core.heuristic import OffloaDNNSolver
from repro.obs import ObsSession, jsonl_lines
from repro.serving import ServingConfig, ServingRuntime
from repro.serving.queueing import DropReason
from repro.workloads.smallscale import serving_small_scale_problem

REPO_ROOT = pathlib.Path(__file__).parent.parent
SEED = 0
NODE_COUNTS = (1, 2, 4)
LOAD = 2.0


def _runtime(duration_s: float) -> ServingRuntime:
    problem = serving_small_scale_problem(5, seed=SEED)
    config = ServingConfig(duration_s=duration_s, load_factor=LOAD, seed=SEED)
    return ServingRuntime.from_problem(
        problem, config, solver=OffloaDNNSolver(slice_margin_rbs=2)
    )


def _run_cluster(runtime: ServingRuntime, num_nodes: int | None, obs=None):
    """One serving run; ``num_nodes=None`` is the plain single executor."""
    runtime.obs = obs
    if num_nodes is None:
        runtime.cluster = None
    else:
        runtime.cluster = ClusterDeployment.place(
            runtime.problem,
            runtime.solution,
            runtime.tickets,
            default_topology(num_nodes),
        )
    return runtime.run()


def _row(metrics, runtime, num_nodes: int) -> dict:
    p95 = max(
        (t.latency.p95_s for t in metrics.tasks.values() if t.completed > 0),
        default=float("nan"),
    )
    net_drops = sum(
        t.drops[DropReason.REMOTE_ERROR] + t.drops[DropReason.TRANSFER_TIMEOUT]
        for t in metrics.tasks.values()
    )
    if runtime.cluster is not None:
        qos = runtime.executor.qos
        split = runtime.cluster.plan.split_tasks
        streamed = qos.bytes_streamed
        utils = [
            node.utilization(metrics.duration_s)
            for node in runtime.cluster.registry.nodes.values()
        ]
        mean_util = sum(utils) / len(utils)
    else:
        split, streamed, mean_util = 0, 0, float("nan")
    return {
        "nodes": num_nodes,
        "served": metrics.completed,
        "served_rate_rps": metrics.throughput_rps,
        "p95_s": p95,
        "split_paths": split,
        "bytes_streamed": streamed,
        "net_drops": net_drops,
        "mean_node_util": mean_util,
    }


def run(quick: bool = False) -> dict:
    duration_s = 2.0 if quick else 10.0
    counts = (3,) if quick else NODE_COUNTS

    # invariant 1: 1-node cluster == plain BatchExecutor, bit-identical
    runtime = _runtime(duration_s)
    plain = _run_cluster(runtime, None)
    one_node = _run_cluster(runtime, 1)
    parity = plain.completed == one_node.completed and all(
        plain.tasks[tid].latency == one_node.tasks[tid].latency
        and plain.tasks[tid].drops == one_node.tasks[tid].drops
        for tid in plain.tasks
    )

    # invariant 2: byte-identical virtual span logs across two 3-node runs
    logs = []
    for _ in range(2):
        fresh = _runtime(duration_s)
        obs = ObsSession()
        _run_cluster(fresh, 3, obs=obs)
        logs.append(jsonl_lines([obs.virtual]))
    deterministic = logs[0] == logs[1]

    sweep = []
    for num_nodes in counts:
        metrics = _run_cluster(runtime, num_nodes)
        sweep.append(_row(metrics, runtime, num_nodes))

    report = {
        "bench": "cluster",
        "seed": SEED,
        "duration_s": duration_s,
        "load_factor": LOAD,
        "quick": quick,
        "one_node_parity": parity,
        "deterministic_trace": deterministic,
        "sweep": sweep,
    }

    if quick:
        # CI round-trips this through `repro trace-summary`
        trace_runtime = _runtime(duration_s)
        obs = ObsSession()
        _run_cluster(trace_runtime, 3, obs=obs)
        trace_path = REPO_ROOT / "benchmarks" / "results" / "BENCH_cluster_trace.json"
        trace_path.parent.mkdir(exist_ok=True)
        obs.write_trace(trace_path)
        report["trace_file"] = str(trace_path.relative_to(REPO_ROOT))
        report["trace_spans"] = obs.span_count
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="3-node 2 s smoke for CI (writes a round-trippable trace)",
    )
    args = parser.parse_args()

    report = run(quick=args.quick)
    rows = [
        [
            r["nodes"],
            r["served"],
            r["served_rate_rps"],
            1e3 * r["p95_s"],
            r["split_paths"],
            r["bytes_streamed"],
            r["net_drops"],
            100.0 * r["mean_node_util"],
        ]
        for r in report["sweep"]
    ]
    table = format_table(
        [
            "nodes", "served", "rate r/s", "p95 ms",
            "splits", "bytes", "net-drop", "util %",
        ],
        rows,
        precision=1,
    )
    summary = (
        table
        + f"\none-node parity with BatchExecutor: {report['one_node_parity']}"
        + f"\nbyte-identical 3-node traces: {report['deterministic_trace']}"
    )
    name = "BENCH_cluster_quick" if args.quick else "BENCH_cluster"
    emit(name, summary)

    if args.quick:
        json_path = REPO_ROOT / "benchmarks" / "results" / f"{name}.json"
    else:
        json_path = REPO_ROOT / "BENCH_cluster.json"
    write_json(report, json_path)

    failed = False
    if not report["one_node_parity"]:
        print("PARITY FAILURE: 1-node cluster diverged from BatchExecutor")
        failed = True
    if not report["deterministic_trace"]:
        print("DETERMINISM FAILURE: 3-node span logs differ across runs")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
