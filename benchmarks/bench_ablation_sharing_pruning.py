"""Ablation — the paper's three innovations, isolated.

* block sharing on/off (innovation 1): OffloaDNN vs the greedy
  no-sharing variant — quantifies the memory saving that sharing buys;
* pruning on/off (innovation 3): the same scenario with the pruned
  configurations removed from the catalog — quantifies the inference
  compute saving that structured pruning buys;
* fine-tuned-vs-full path diversity (innovation 2) shows up as the
  accuracy-feasible admission count when only CONFIG A / CONFIG B paths
  exist.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.report import format_table
from repro.baselines.greedy import GreedyNoSharingSolver
from repro.core.heuristic import OffloaDNNSolver
from repro.core.problem import DOTProblem
from repro.workloads.generator import ScenarioCatalogBuilder
from repro.workloads.largescale import (
    LARGE_SCALE,
    RequestRate,
    large_scale_problem,
    large_scale_tasks,
)


def _problem_with_configs(rate: RequestRate, config_names: tuple[str, ...]) -> DOTProblem:
    tasks = large_scale_tasks(rate)
    builder = ScenarioCatalogBuilder(config_names=config_names, seed=0)
    catalog = builder.build(tasks, tasks[0].qualities[0])
    base = large_scale_problem(rate, seed=0)
    return DOTProblem(
        tasks=tasks, catalog=catalog, budgets=base.budgets,
        radio=base.radio, alpha=base.alpha,
    )


def bench_ablation_sharing_and_pruning(benchmark):
    rate = RequestRate.MEDIUM

    def run():
        full_problem = large_scale_problem(rate, seed=0)
        shared = OffloaDNNSolver().solve(full_problem)
        no_sharing = GreedyNoSharingSolver().solve(full_problem)
        unpruned_names = tuple(
            name for name in ScenarioCatalogBuilder().config_names
            if not name.endswith("-pruned")
        )
        no_pruning_problem = _problem_with_configs(rate, unpruned_names)
        no_pruning = OffloaDNNSolver().solve(no_pruning_problem)
        return {
            "OffloaDNN (full)": (shared, full_problem),
            "no sharing": (no_sharing, full_problem),
            "no pruning": (no_pruning, no_pruning_problem),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            name,
            sol.total_memory_gb,
            sol.total_inference_compute_s,
            sol.weighted_admission_ratio,
            sol.admitted_task_count,
        ]
        for name, (sol, _) in results.items()
    ]
    emit(
        "ablation_sharing_pruning",
        "Ablation: sharing and pruning (large scale, medium rate)\n"
        + format_table(
            ["variant", "memory [GB]", "inference [s]", "w. admission", "admitted"],
            rows,
        ),
    )
    full = results["OffloaDNN (full)"][0]
    no_sharing = results["no sharing"][0]
    no_pruning = results["no pruning"][0]
    # sharing can only reduce memory
    assert full.total_memory_gb <= no_sharing.total_memory_gb + 1e-9
    # pruning is what buys the inference compute saving
    assert full.total_inference_compute_s < 0.5 * no_pruning.total_inference_compute_s
