"""Fig. 2 — training configurations: accuracy progression and memory.

Left panel: testing accuracy after each epoch for CONFIG A..E (the
paper's orderings: B/C fast but overfitting, D/E slower than C, A
slowest but eventually best).  Right panel: peak GPU memory occupancy
during training (A highest; B ~1.8x lower).
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.figures import fig2_training_curves
from repro.analysis.report import format_series, format_table


def bench_fig2_training_configurations(benchmark):
    data = benchmark.pedantic(
        lambda: fig2_training_curves(epochs=250, width=64, input_size=32),
        rounds=1,
        iterations=1,
    )
    sample_epochs = [1, 50, 150, 250]
    lines = ["Fig. 2 (left): testing accuracy [%] at epochs " + str(sample_epochs)]
    for name, entry in data.items():
        curve = entry["accuracy_curve"]
        picks = [100 * curve[e - 1] for e in sample_epochs]
        lines.append(format_series(f"  {name}", picks, precision=1))
        lines.append(
            f"    epochs to 80%: {entry['epochs_to_80pct']}"
        )
    rows = [
        [name, entry["peak_memory_mib"]] for name, entry in data.items()
    ]
    lines.append("")
    lines.append("Fig. 2 (right): peak GPU memory occupancy [MiB]")
    lines.append(format_table(["config", "peak MiB"], rows, precision=0))
    ratio = data["CONFIG A"]["peak_memory_mib"] / data["CONFIG B"]["peak_memory_mib"]
    lines.append(f"CONFIG A / CONFIG B memory ratio: {ratio:.2f}x (paper: ~1.8x)")
    emit("fig2_training", "\n".join(lines))

    assert data["CONFIG A"]["epochs_to_80pct"] > 200
    assert ratio > 1.3
