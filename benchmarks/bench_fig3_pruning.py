"""Fig. 3 — pruning effects on inference time and class accuracy.

Left panel: dummy-tensor inference compute time per configuration with
and without 80% pruning (A-pruned fastest, B-pruned slowest of the
pruned set).  Right panel: average class accuracy (every pruned variant
a bit worse; B-pruned best because it inherits the most base blocks).
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.figures import fig3_pruning_effects
from repro.analysis.report import format_table


def bench_fig3_pruning_effects(benchmark):
    data = benchmark.pedantic(
        lambda: fig3_pruning_effects(width=64, input_size=32, repeats=3),
        rounds=1,
        iterations=1,
    )
    rows = []
    for letter in "ABCDE":
        base = data[f"CONFIG {letter}"]
        pruned = data[f"CONFIG {letter}-pruned"]
        rows.append(
            [
                f"CONFIG {letter}",
                base["inference_time_ms"],
                pruned["inference_time_ms"],
                100 * base["class_accuracy"],
                100 * pruned["class_accuracy"],
            ]
        )
    emit(
        "fig3_pruning",
        "Fig. 3: effects of 80% structured pruning (100-epoch fine-tune)\n"
        + format_table(
            [
                "config",
                "time w/o prune [ms]",
                "time pruned [ms]",
                "acc w/o prune [%]",
                "acc pruned [%]",
            ],
            rows,
            precision=2,
        ),
    )
    pruned_times = {
        name: d["inference_time_ms"] for name, d in data.items() if name.endswith("-pruned")
    }
    assert min(pruned_times, key=pruned_times.get) == "CONFIG A-pruned"
    pruned_acc = {
        name: d["class_accuracy"] for name, d in data.items() if name.endswith("-pruned")
    }
    assert max(pruned_acc, key=pruned_acc.get) == "CONFIG B-pruned"
