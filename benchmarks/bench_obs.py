"""Observability overhead — the cost of ``repro.obs`` when nobody looks.

The tracing layer promises *zero overhead when disabled*: every
instrumented site pays one thread-local read plus one attribute check
(``tracer = current_tracer(); if tracer.enabled:``) and nothing else.
This bench proves the claim two ways:

1. **Site cost**: times both guard shapes in a tight loop against an
   empty loop of the same shape — the full thread-local lookup (paid
   once per solver phase / compiled forward) and the hoisted
   ``tracer.enabled`` check (paid per event in the serving and engine
   hot loops) — yielding nanoseconds per instrumented site.
2. **Run parity + overhead bound**: runs the same seeded serving
   simulation with ``obs=None`` and with a live
   :class:`~repro.obs.ObsSession`, asserts the resulting
   :class:`~repro.serving.metrics.ServingMetrics` are **bit-identical**
   (the acceptance criterion: observing the run must not change it),
   and bounds the disabled overhead as
   ``spans_recorded_when_enabled × hoisted_site_cost / disabled_wall``
   — the number of spans an enabled run records is an upper proxy for
   how often a disabled run evaluates a guard.

The enabled run's Chrome trace is also round-tripped through
:func:`~repro.obs.validate_chrome_trace` so CI catches schema drift.

Exits nonzero if parity breaks, the overhead bound exceeds
``OVERHEAD_BUDGET`` (2%), or the trace fails validation.
"""

from __future__ import annotations

import argparse
import math
import pathlib
import time

import numpy as np

from benchmarks._report import attach_obs, emit, write_json
from repro.core.heuristic import OffloaDNNSolver
from repro.obs import ObsSession, current_tracer, validate_chrome_trace
from repro.serving.metrics import ServingMetrics
from repro.serving.runtime import ServingConfig, ServingRuntime
from repro.workloads.smallscale import serving_small_scale_problem

REPO_ROOT = pathlib.Path(__file__).parent.parent
SEED = 0
#: maximum tolerated disabled-tracing overhead (fraction of run time)
OVERHEAD_BUDGET = 0.02


def _lookup_loop(n: int) -> None:
    """Cold-site cost: thread-local lookup + enabled predicate.

    This is what a site that cannot hoist pays — once per solver phase
    or per compiled forward, never per event.
    """
    for _ in range(n):
        tracer = current_tracer()
        if tracer.enabled:  # pragma: no cover - tracing is off here
            tracer.event("bench", cat="bench")


def _hoisted_loop(n: int) -> None:
    """Hot-site cost: the tracer is already bound, only ``.enabled``.

    The serving runtime and the compiled engine hoist the lookup out of
    their event/step loops, so per-event sites pay exactly this.
    """
    tracer = current_tracer()
    for _ in range(n):
        if tracer.enabled:  # pragma: no cover - tracing is off here
            tracer.event("bench", cat="bench")


def _empty_loop(n: int) -> None:
    for _ in range(n):
        pass


def _best_of(fn, n: int, repeats: int) -> float:
    """Minimum wall time of ``fn(n)`` — min, not median, for loop timing."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn(n)
        best = min(best, time.perf_counter() - start)
    return best


def site_costs_ns(iterations: int, repeats: int) -> tuple[float, float]:
    """(lookup_ns, hoisted_ns) a disabled site costs on this machine."""
    empty = _best_of(_empty_loop, iterations, repeats)
    lookup = _best_of(_lookup_loop, iterations, repeats)
    hoisted = _best_of(_hoisted_loop, iterations, repeats)
    return (
        max(0.0, lookup - empty) / iterations * 1e9,
        max(0.0, hoisted - empty) / iterations * 1e9,
    )


def _float_eq(a: float, b: float) -> bool:
    """Bit-for-bit equality where nan counts as equal to itself."""
    return a == b or (math.isnan(a) and math.isnan(b))


def metrics_identical(a: ServingMetrics, b: ServingMetrics) -> list[str]:
    """All the ways two runs' metrics differ (empty = bit-identical)."""
    diffs: list[str] = []
    for name in ("duration_s", "total_compute_s", "compute_saved_s"):
        if not _float_eq(getattr(a, name), getattr(b, name)):
            diffs.append(f"{name}: {getattr(a, name)!r} != {getattr(b, name)!r}")
    for name in ("windows", "prefix_merges"):
        if getattr(a, name) != getattr(b, name):
            diffs.append(f"{name}: {getattr(a, name)} != {getattr(b, name)}")
    if set(a.tasks) != set(b.tasks):
        diffs.append(f"task ids: {sorted(a.tasks)} != {sorted(b.tasks)}")
        return diffs
    for task_id in sorted(a.tasks):
        ta, tb = a.tasks[task_id], b.tasks[task_id]
        for name in ("offered", "admitted", "completed", "deadline_misses"):
            if getattr(ta, name) != getattr(tb, name):
                diffs.append(
                    f"task{task_id}.{name}: "
                    f"{getattr(ta, name)} != {getattr(tb, name)}"
                )
        if ta.drops != tb.drops:
            diffs.append(f"task{task_id}.drops: {ta.drops} != {tb.drops}")
        for name in ("count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"):
            va, vb = getattr(ta.latency, name), getattr(tb.latency, name)
            if not _float_eq(va, vb):
                diffs.append(f"task{task_id}.latency.{name}: {va!r} != {vb!r}")
    return diffs


def _runtime(duration_s: float) -> ServingRuntime:
    problem = serving_small_scale_problem(5, seed=SEED)
    return ServingRuntime.from_problem(
        problem,
        config=ServingConfig(duration_s=duration_s, num_workers=2, seed=SEED),
        solver=OffloaDNNSolver(slice_margin_rbs=2),
    )


def run(quick: bool) -> dict:
    iterations = 200_000 if quick else 1_000_000
    loop_repeats = 5 if quick else 9
    run_repeats = 3 if quick else 5
    duration_s = 2.0 if quick else 10.0

    lookup_ns, hoisted_ns = site_costs_ns(iterations, loop_repeats)

    runtime = _runtime(duration_s)

    # disabled runs: obs stays None, only the guards execute
    runtime.obs = None
    disabled_walls = []
    baseline = None
    for _ in range(run_repeats):
        start = time.perf_counter()
        baseline = runtime.run()
        disabled_walls.append(time.perf_counter() - start)
    disabled_wall = float(np.median(disabled_walls))

    # enabled run: fresh session so span counts reflect one run exactly
    obs = ObsSession()
    runtime.obs = obs
    start = time.perf_counter()
    observed = runtime.run()
    enabled_wall = time.perf_counter() - start
    runtime.obs = None

    assert baseline is not None
    parity_diffs = metrics_identical(baseline, observed)

    # Each recorded span/event corresponds to (at least) one guard the
    # disabled run evaluated.  The serving runtime binds its tracer once
    # per run, so those guards are hoisted attribute checks; charging
    # every one of them the hoisted cost bounds what the disabled run
    # spent on observability.
    estimated_sites = obs.span_count
    overhead = estimated_sites * hoisted_ns * 1e-9 / disabled_wall

    trace_problems = validate_chrome_trace(obs.chrome_trace())

    report = {
        "bench": "bench_obs",
        "mode": "quick" if quick else "full",
        "settings": {
            "seed": SEED,
            "loop_iterations": iterations,
            "loop_repeats": loop_repeats,
            "run_repeats": run_repeats,
            "duration_s": duration_s,
            "overhead_budget": OVERHEAD_BUDGET,
        },
        "lookup_site_ns": lookup_ns,
        "hoisted_site_ns": hoisted_ns,
        "disabled_wall_s": disabled_wall,
        "enabled_wall_s": enabled_wall,
        "estimated_sites": estimated_sites,
        "overhead_fraction": overhead,
        "metrics_bit_identical": not parity_diffs,
        "parity_diffs": parity_diffs,
        "trace_problems": trace_problems,
    }
    return attach_obs(report, obs)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short run for CI smoke: fewer loop iterations, 2 s of traffic",
    )
    args = parser.parse_args()

    report = run(quick=args.quick)
    summary = (
        f"disabled site cost: {report['lookup_site_ns']:.1f} ns "
        f"(thread-local lookup), {report['hoisted_site_ns']:.1f} ns "
        f"(hoisted check)\n"
        f"serving run (tracing off): {report['disabled_wall_s'] * 1e3:.1f} ms"
        f"   (tracing on: {report['enabled_wall_s'] * 1e3:.1f} ms, "
        f"{report['span_count']} spans)\n"
        f"bounded disabled overhead: {100 * report['overhead_fraction']:.3f}%"
        f" of run time ({report['estimated_sites']} sites)"
        f"   budget: {100 * OVERHEAD_BUDGET:.0f}%\n"
        f"metrics bit-identical with tracing on: "
        f"{report['metrics_bit_identical']}\n"
        f"chrome trace validation problems: {len(report['trace_problems'])}"
    )
    name = "BENCH_obs_quick" if args.quick else "BENCH_obs"
    emit(name, summary)

    if args.quick:
        json_path = REPO_ROOT / "benchmarks" / "results" / f"{name}.json"
    else:
        json_path = REPO_ROOT / "BENCH_obs.json"
    write_json(report, json_path)

    failed = False
    if not report["metrics_bit_identical"]:
        print("PARITY FAILURE: tracing changed the metrics:")
        for diff in report["parity_diffs"]:
            print(f"  {diff}")
        failed = True
    if report["overhead_fraction"] >= OVERHEAD_BUDGET:
        print(
            f"OVERHEAD FAILURE: {100 * report['overhead_fraction']:.2f}% "
            f">= {100 * OVERHEAD_BUDGET:.0f}%"
        )
        failed = True
    if report["trace_problems"]:
        print("TRACE VALIDATION FAILURE:")
        for problem in report["trace_problems"]:
            print(f"  {problem}")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
