"""Table I — characterization of the DNN block configurations.

Regenerates the Table I inventory with measured parameters, inference
time and converged accuracy per configuration, and benches the
profiling pipeline that produces the DOT inputs.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.report import format_table
from repro.dnn.configs import TABLE_I_CONFIGS
from repro.dnn.repository import profile_table_i


def bench_table1_configuration_profiling(benchmark):
    profiled = benchmark.pedantic(
        lambda: profile_table_i(width=32, input_size=32, repeats=2),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name in sorted(TABLE_I_CONFIGS):
        pc = profiled[name]
        config = pc.config
        rows.append(
            [
                name,
                ",".join(config.shared_stages) or "-",
                f"{config.prune_ratio:.0%}" if config.pruned else "-",
                pc.total_compute_time_s * 1e3,
                pc.total_memory_gb * 1e3,
                pc.accuracy,
            ]
        )
    emit(
        "table1_configs",
        "Table I: DNN block configurations (ResNet-18 substrate)\n"
        + format_table(
            ["config", "shared stages", "prune", "inference ms", "memory MB", "accuracy"],
            rows,
        ),
    )
    assert len(profiled) == 10
